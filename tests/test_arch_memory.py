"""Tests for activation packing and the buffer occupancy/tiling analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.arch.act_packing import (
    ACT_NORMAL_MAX,
    PackedActivations,
    pack_activations,
    unpack_activations,
)
from repro.arch.memory import check_network, layer_footprint, olaccel_tiling
from repro.harness import paper_workload


class TestActivationPacking:
    def test_roundtrip_with_outliers(self, rng):
        levels = rng.integers(0, 60, size=(20, 5, 5))
        packed = pack_activations(levels)
        np.testing.assert_array_equal(unpack_activations(packed), levels)

    def test_outliers_removed_from_dense_stream(self, rng):
        levels = np.zeros((16, 2, 2), dtype=np.int64)
        levels[3, 1, 0] = 100
        packed = pack_activations(levels)
        assert len(packed.outliers) == 1
        entry = packed.outliers[0]
        assert (entry.value, entry.c_idx, entry.h_idx, entry.w_idx) == (100, 3, 1, 0)
        assert packed.dense.max() <= ACT_NORMAL_MAX

    def test_channel_padding(self, rng):
        levels = rng.integers(0, 10, size=(5, 3, 3))  # 5 channels -> 1 block
        packed = pack_activations(levels)
        assert packed.n_chunks == 9  # one chunk per pixel
        np.testing.assert_array_equal(unpack_activations(packed), levels)

    def test_chunk_order_is_pixel_major(self):
        levels = np.zeros((16, 2, 2), dtype=np.int64)
        levels[0, 0, 0] = 1  # pixel (0,0)
        levels[0, 1, 1] = 2  # pixel (1,1)
        packed = pack_activations(levels)
        assert packed.dense[0, 0] == 1  # first chunk = pixel (0, 0)
        assert packed.dense[3, 0] == 2  # last chunk = pixel (1, 1)

    def test_density_and_quads(self, rng):
        levels = np.zeros((16, 4, 4), dtype=np.int64)
        packed = pack_activations(levels)
        assert packed.nonzero_density() == 0.0
        assert packed.zero_quad_fraction() == 1.0

    def test_storage_accounting(self, rng):
        levels = rng.integers(0, 100, size=(32, 4, 4))
        packed = pack_activations(levels)
        assert packed.dense_bits == 32 * 16 * 4
        assert packed.outlier_bits == 40 * len(packed.outliers)
        assert packed.total_bits == packed.dense_bits + packed.outlier_bits

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            pack_activations(np.full((4, 2, 2), -1))

    def test_wrong_rank_raises(self):
        with pytest.raises(ValueError):
            pack_activations(np.zeros((4, 4)))

    @given(hnp.arrays(np.int64, (8, 3, 4), elements=st.integers(0, 300)))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, levels):
        packed = pack_activations(levels)
        np.testing.assert_array_equal(unpack_activations(packed), levels)


class TestFootprints:
    @pytest.fixture(scope="class")
    def alexnet(self):
        return paper_workload("alexnet")

    @pytest.fixture(scope="class")
    def vgg(self):
        return paper_workload("vgg16")

    def test_table1_alexnet_fits_393kb(self, alexnet):
        """Paper claim: 393 KiB holds a layer's activations at 16-bit."""
        capacity = 393 * 1024 * 8
        footprints = check_network(alexnet, capacity, "olaccel")
        for name, fp in footprints.items():
            if name != "conv1":  # 16-bit raw input is the known exception
                assert fp.fits(capacity), name

    def test_vgg_16bit_overflows_where_4bit_fits(self, vgg):
        """The memory effect behind OLAccel's VGG energy win."""
        capacity = 4800 * 1024 * 8
        eyeriss = check_network(vgg, capacity, "eyeriss16")
        olaccel = check_network(vgg, capacity, "olaccel")
        overflowing = [n for n, fp in eyeriss.items() if not fp.fits(capacity)]
        assert overflowing  # 224x224x64 at 16-bit cannot fit 4.8 MB
        for name in overflowing:
            assert olaccel[name].fits(capacity), name

    def test_zena_weight_working_set_uses_density(self, alexnet):
        conv2 = alexnet.layers[1]
        dense = layer_footprint(conv2, "eyeriss16")
        sparse = layer_footprint(conv2, "zena16")
        assert sparse.weight_working_set_bits < dense.weight_working_set_bits

    def test_olaccel_chunked_weights(self, alexnet):
        conv3 = alexnet.layers[2]
        fp = layer_footprint(conv3, "olaccel")
        assert fp.weight_working_set_bits == pytest.approx(conv3.weight_count * 5.0)

    def test_unknown_style(self, alexnet):
        with pytest.raises(ValueError):
            layer_footprint(alexnet.layers[0], "tpu")

    def test_invalid_capacity(self, alexnet):
        with pytest.raises(ValueError):
            check_network(alexnet, 0, "olaccel")


class TestTiling:
    def test_small_layer_single_tile(self):
        conv1 = paper_workload("alexnet").layers[0]
        tiling = olaccel_tiling(conv1)
        assert tiling.single_tile
        assert tiling.psum_passes == 1

    def test_deep_reduction_needs_tiles(self):
        """VGG conv5-style layers: 3x3x512 reduction = 288 chunks > 200."""
        vgg = paper_workload("vgg16")
        conv5 = next(l for l in vgg.layers if l.name == "conv5_3")
        tiling = olaccel_tiling(conv5)
        assert tiling.reduction_chunks == 9 * 32
        assert tiling.weight_tiles == 2
        assert tiling.psum_passes == 2

    def test_bigger_buffer_fewer_tiles(self):
        vgg = paper_workload("vgg16")
        conv5 = next(l for l in vgg.layers if l.name == "conv5_3")
        assert olaccel_tiling(conv5, weight_buffer_chunks=400).single_tile

    def test_invalid_buffer(self):
        conv1 = paper_workload("alexnet").layers[0]
        with pytest.raises(ValueError):
            olaccel_tiling(conv1, weight_buffer_chunks=0)
