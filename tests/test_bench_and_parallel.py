"""Tests for the `repro bench` harness and the multiprocessing
layer-parallel mode (both new in the vectorization PR)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.harness.bench import BENCH_SEED_DEFAULT, default_bench_path, run_benchmarks
from repro.harness.experiments import ALL_ACCELERATORS, breakdown_experiment
from repro.harness.parallel import parallel_network_run
from repro.obs import Registry

PAIRED_CASES = (
    "pack_weights",
    "packed_unpack",
    "bitcodec_encode",
    "bitcodec_decode",
    "pack_activations",
    "unpack_activations",
    "e2e_alexnet_functional",
    "event_sim_cluster",
    "pe_group_pass",
    "col2im_backward",
    "simcache_warm_sweep",
    "layer_memo_warm_network",
)
TIMING_ONLY_CASES = ("quantize_weights", "simulate_layer", "simulate_network")


@pytest.fixture(scope="module")
def smoke_result():
    return run_benchmarks(smoke=True, seed=0)


def test_bench_covers_all_cases(smoke_result):
    names = [case.name for case in smoke_result.cases]
    for name in PAIRED_CASES + TIMING_ONLY_CASES:
        assert name in names


def test_bench_timings_positive_and_paired(smoke_result):
    for case in smoke_result.cases:
        assert case.best_s > 0
        assert case.mean_s >= case.best_s
        if case.name in PAIRED_CASES:
            assert case.baseline_best_s is not None and case.baseline_best_s > 0
            assert case.speedup == pytest.approx(case.baseline_best_s / case.best_s)
        else:
            assert case.speedup is None


def test_bench_vectorization_wins(smoke_result):
    # even at smoke sizes the chunk-grid paths should win clearly; the
    # committed full-size BENCH baseline shows far larger margins
    assert smoke_result.speedup("pack_weights") > 1.5
    assert smoke_result.speedup("packed_unpack") > 1.5
    assert smoke_result.speedup("bitcodec_encode") > 1.5
    assert smoke_result.speedup("e2e_alexnet_functional") > 1.1
    assert smoke_result.speedup("pack_activations") > 10.0
    assert smoke_result.speedup("event_sim_cluster") > 1.5
    assert smoke_result.speedup("pe_group_pass") > 1.5
    assert smoke_result.speedup("col2im_backward") > 1.1
    # warm cache replay vs cold fault-cell compute is the largest margin
    assert smoke_result.speedup("simcache_warm_sweep") > 3.0
    # warm disk replay of layer entries vs cold populate (first run)
    assert smoke_result.speedup("layer_memo_warm_network") > 1.5


def test_bench_seed_resolution():
    assert run_benchmarks(smoke=True, seed=123).seed == 123
    assert run_benchmarks(smoke=True).seed == BENCH_SEED_DEFAULT


def test_bench_to_dict_round_trips_through_json(smoke_result):
    doc = json.loads(json.dumps(smoke_result.to_dict()))
    assert doc["kind"] == "bench"
    assert doc["smoke"] is True
    assert len(doc["cases"]) == len(smoke_result.cases)
    assert "obs" in doc
    formatted = smoke_result.format()
    assert "pack_weights" in formatted and "speedup" in formatted


def test_bench_case_dicts_omit_absent_baselines(smoke_result):
    # paired cases serialize all three baseline keys; timing-only cases
    # omit them entirely (absent, not null) so envelope consumers can
    # distinguish "never paired" from "paired with a null measurement"
    by_name = {case["name"]: case for case in smoke_result.to_dict()["cases"]}
    baseline_keys = ("baseline_best_s", "baseline_repeats", "speedup")
    for name in PAIRED_CASES:
        for key in baseline_keys:
            assert key in by_name[name], f"{name} missing {key}"
            assert by_name[name][key] is not None
    for name in TIMING_ONLY_CASES:
        for key in baseline_keys:
            assert key not in by_name[name], f"{name} should omit {key}"
    # shared schema: every case carries the timing core, meta stays a dict
    for case in by_name.values():
        for key in ("name", "repeats", "best_s", "mean_s", "meta"):
            assert key in case
        assert isinstance(case["meta"], dict)


def test_default_bench_path_is_versioned():
    path = default_bench_path()
    assert path.startswith("BENCH_") and path.endswith(".json")


def test_bench_cli_smoke_writes_envelope(tmp_path, capsys):
    out = tmp_path / "bench.json"
    assert main(["bench", "--smoke", "--seed", "0", "--json", str(out)]) == 0
    doc = json.loads(out.read_text())
    assert doc["schema"] == "repro.experiment/v1"
    assert doc["experiment"] == "bench"
    assert doc["result"]["kind"] == "bench"
    assert capsys.readouterr().out.count("pack_weights") >= 1


# ---------------------------------------------------------------------------
# layer-parallel mode
# ---------------------------------------------------------------------------


def _runs_equal(a, b):
    assert a.accelerator == b.accelerator
    assert a.network == b.network
    assert len(a.layers) == len(b.layers)
    for la, lb in zip(a.layers, b.layers):
        assert la.layer_name == lb.layer_name
        assert la.cycles == lb.cycles
        assert la.energy.dram == lb.energy.dram
        assert la.energy.buffer == lb.energy.buffer
        assert la.energy.local == lb.energy.local
        assert la.energy.logic == lb.energy.logic


@pytest.mark.parametrize("kind", ["olaccel16", "eyeriss16", "zena8"])
def test_parallel_run_bit_identical_to_serial(kind):
    serial = parallel_network_run(kind, "alexnet", jobs=1)
    parallel = parallel_network_run(kind, "alexnet", jobs=2)
    _runs_equal(serial, parallel)
    assert parallel.total_cycles == serial.total_cycles
    assert parallel.total_energy.total == serial.total_energy.total


def test_parallel_obs_counters():
    obs = Registry()
    parallel_network_run("olaccel16", "alexnet", jobs=2, obs=obs)
    snapshot = obs.snapshot()
    assert snapshot.get("parallel/jobs") == 2
    assert snapshot.get("parallel/layers", 0) >= 2


def test_breakdown_experiment_jobs_matches_serial():
    serial = breakdown_experiment("alexnet")
    parallel = breakdown_experiment("alexnet", jobs=2)
    assert set(serial.runs) == set(parallel.runs) == set(ALL_ACCELERATORS)
    for kind in ALL_ACCELERATORS:
        _runs_equal(serial.runs[kind], parallel.runs[kind])
    assert parallel.normalized_cycles() == serial.normalized_cycles()
    assert parallel.normalized_energy() == serial.normalized_energy()


def test_compare_cli_accepts_jobs(capsys):
    assert main(["compare", "alexnet", "--jobs", "2"]) == 0
    assert "olaccel" in capsys.readouterr().out
