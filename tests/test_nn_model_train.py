"""Tests for the model container, training loop, dataset, pruning and zoos."""

import numpy as np
import pytest

from repro.nn import (
    Conv2d,
    Flatten,
    Linear,
    Model,
    ReLU,
    SGD,
    TrainConfig,
    build_mini,
    evaluate_loss,
    make_dataset,
    mini_alexnet,
    mini_densenet,
    mini_resnet,
    mini_vgg,
    prune_layer,
    prune_model,
    train_model,
    weight_density,
)
from repro.nn.zoo_paper import alexnet_spec, build_paper, resnet18_spec, vgg16_spec


class TestModel:
    def test_forward_and_parameter_enumeration(self, rng):
        model = Model([Conv2d(3, 4, 3, pad=1, rng=rng), ReLU(), Flatten(), Linear(4 * 8 * 8, 5, rng=rng)])
        y = model.forward(rng.normal(size=(2, 3, 8, 8)))
        assert y.shape == (2, 5)
        assert len(model.parameters()) == 4
        assert model.num_parameters() > 0

    def test_compute_layers_descend_into_blocks(self):
        model = mini_resnet(num_classes=5)
        kinds = {type(l).__name__ for l in model.compute_layers()}
        assert kinds == {"Conv2d", "Linear"}
        # stem + 6 blocks x 2 convs + 2 projection shortcuts + fc
        assert len(model.compute_layers()) == 1 + 2 * 6 + 2 + 1

    def test_record_activations_covers_all_compute_layers(self, rng):
        model = mini_densenet(num_classes=4)
        captured = model.record_activations(rng.normal(size=(1, 3, 32, 32)))
        assert set(captured.keys()) == set(range(len(model.compute_layers())))

    def test_record_activations_restores_forward(self, rng):
        model = mini_alexnet(num_classes=4)
        x = rng.normal(size=(2, 3, 32, 32))
        before = model.forward(x)
        model.record_activations(x)
        after = model.forward(x)
        np.testing.assert_allclose(before, after)

    def test_topk_bounds_top1(self, rng, small_dataset):
        model = mini_alexnet(num_classes=small_dataset.num_classes)
        top1 = model.accuracy(small_dataset.test_x, small_dataset.test_y)
        top5 = model.topk_accuracy(small_dataset.test_x, small_dataset.test_y, k=5)
        assert 0.0 <= top1 <= top5 <= 1.0


class TestTraining:
    def test_loss_decreases(self, small_dataset):
        model = mini_alexnet(num_classes=small_dataset.num_classes, seed=5)
        result = train_model(
            model,
            small_dataset.train_x,
            small_dataset.train_y,
            TrainConfig(epochs=3, batch_size=32, lr=0.01, seed=0),
        )
        assert result.losses[-1] < result.losses[0]

    def test_trained_model_beats_chance(self, tiny_trained_model, small_dataset):
        chance = 1.0 / small_dataset.num_classes
        acc = tiny_trained_model.accuracy(small_dataset.test_x, small_dataset.test_y)
        assert acc > 2 * chance

    def test_gradient_clipping_bounds_norm(self, rng):
        layer = Linear(4, 4, rng=rng)
        layer.weight.grad[...] = 100.0
        opt = SGD([layer.weight], lr=0.1, grad_clip=1.0)
        opt._clip_gradients()
        norm = np.sqrt((layer.weight.grad**2).sum())
        assert norm <= 1.0 + 1e-9

    def test_evaluate_loss_matches_batched(self, tiny_trained_model, small_dataset):
        full = evaluate_loss(tiny_trained_model, small_dataset.test_x, small_dataset.test_y, batch_size=1000)
        batched = evaluate_loss(tiny_trained_model, small_dataset.test_x, small_dataset.test_y, batch_size=7)
        assert full == pytest.approx(batched, rel=1e-9)

    def test_weight_decay_skips_biases(self, rng):
        layer = Linear(3, 3, rng=rng)
        layer.bias.value[...] = 10.0
        layer.bias.grad[...] = 0.0
        layer.weight.grad[...] = 0.0
        opt = SGD(layer.parameters(), lr=0.1, momentum=0.0, weight_decay=0.5)
        w_before = layer.weight.value.copy()
        opt.step()
        assert not np.allclose(layer.weight.value, w_before)  # decayed
        np.testing.assert_allclose(layer.bias.value, 10.0)  # untouched


class TestDataset:
    def test_shapes_and_labels(self):
        ds = make_dataset(num_classes=4, train_per_class=10, test_per_class=5, size=16)
        assert ds.train_x.shape == (40, 3, 16, 16)
        assert ds.test_x.shape == (20, 3, 16, 16)
        assert set(np.unique(ds.train_y)) == set(range(4))

    def test_deterministic_by_seed(self):
        a = make_dataset(num_classes=3, train_per_class=5, test_per_class=2, size=8, seed=9)
        b = make_dataset(num_classes=3, train_per_class=5, test_per_class=2, size=8, seed=9)
        np.testing.assert_allclose(a.train_x, b.train_x)

    def test_different_seeds_differ(self):
        a = make_dataset(num_classes=3, train_per_class=5, test_per_class=2, size=8, seed=1)
        b = make_dataset(num_classes=3, train_per_class=5, test_per_class=2, size=8, seed=2)
        assert not np.allclose(a.train_x, b.train_x)


class TestPruning:
    def test_prune_layer_density(self, rng):
        w = rng.normal(size=(64, 64))
        pruned = prune_layer(w, 0.3)
        assert weight_density(pruned) == pytest.approx(0.3, abs=0.01)

    def test_prune_keeps_largest(self, rng):
        w = rng.normal(size=(100,))
        pruned = prune_layer(w, 0.1)
        kept = np.abs(w[pruned != 0])
        dropped = np.abs(w[pruned == 0])
        assert kept.min() >= dropped.max() - 1e-12

    def test_prune_extremes(self, rng):
        w = rng.normal(size=(10, 10))
        np.testing.assert_allclose(prune_layer(w, 1.0), w)
        assert (prune_layer(w, 0.0) == 0).all()

    def test_prune_invalid_density(self, rng):
        with pytest.raises(ValueError):
            prune_layer(rng.normal(size=(4,)), 1.5)

    def test_prune_model_per_layer_overrides(self):
        model = mini_alexnet(num_classes=4)
        achieved = prune_model(model, density=0.5, per_layer={"conv1": 0.9})
        assert achieved["conv1"] == pytest.approx(0.9, abs=0.02)
        assert achieved["conv3"] == pytest.approx(0.5, abs=0.02)


class TestZoos:
    @pytest.mark.parametrize("name", ["alexnet", "vgg", "resnet", "densenet"])
    def test_mini_models_forward(self, name, rng):
        model = build_mini(name, num_classes=7)
        y = model.forward(rng.normal(size=(2, 3, 32, 32)))
        assert y.shape == (2, 7)

    def test_mini_alexnet_macro_shape(self):
        model = mini_alexnet()
        convs = [l for l in model.compute_layers() if type(l).__name__ == "Conv2d"]
        fcs = [l for l in model.compute_layers() if type(l).__name__ == "Linear"]
        assert len(convs) == 5 and len(fcs) == 3  # AlexNet's 5 conv + 3 fc

    def test_paper_alexnet_mac_count(self):
        spec = alexnet_spec()
        # Grouped AlexNet conv MACs ~= 666M; total with FCs ~= 724M.
        conv_macs = sum(l.macs for l in spec.conv_layers)
        assert 6.0e8 < conv_macs < 7.3e8
        assert 7.0e8 < spec.total_macs < 7.8e8

    def test_paper_vgg_mac_count(self):
        spec = vgg16_spec()
        conv_macs = sum(l.macs for l in spec.conv_layers)
        assert 1.4e10 < conv_macs < 1.6e10  # ~15.3G known value

    def test_paper_resnet18_shapes(self):
        spec = resnet18_spec()
        assert spec.first_layer_weight_bits == 8
        assert spec.layers[0].out_h == 112
        conv_macs = sum(l.macs for l in spec.conv_layers)
        assert 1.6e9 < conv_macs < 2.0e9  # ~1.8G known value

    def test_paper_weight_counts(self):
        assert 5.8e7 < alexnet_spec().total_weights < 6.4e7  # ~61M
        assert 1.3e8 < vgg16_spec().total_weights < 1.45e8  # ~138M

    def test_build_paper_unknown_raises(self):
        with pytest.raises(KeyError):
            build_paper("lenet")

    def test_layer_spec_fc_as_1x1(self):
        fc = alexnet_spec().layers[-1]
        assert fc.kind == "fc"
        assert fc.macs == fc.weight_count == 4096 * 1000
