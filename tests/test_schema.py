"""Golden-schema tests for the JSON/CSV export and `repro profile`.

Pins the documented schemas (docs/EXPERIMENTS.md): the run-stats
document round-trips losslessly through JSON, the experiment envelope
is versioned and self-describing, and the profile verb works end to end
on the mini AlexNet workload.
"""

import json

import pytest

from repro.arch import EnergyBreakdown, STATS_SCHEMA_VERSION
from repro.arch.stats import LayerStats, RunStats
from repro.cli import main
from repro.harness import (
    CLOCK_MHZ,
    EXPERIMENT_SCHEMA,
    breakdown_experiment,
    experiment_csv_rows,
    experiment_envelope,
    load_json,
    profile_network,
    run_stats_from_dict,
    save_json,
)
from repro.olaccel import OLAccelSimulator
from repro.harness.workloads import paper_workload


def simulated_run() -> RunStats:
    return OLAccelSimulator().simulate_network(paper_workload("alexnet"))


class TestRunStatsRoundTrip:
    def test_dict_json_dict_equality(self, tmp_path):
        """RunStats -> dict -> JSON -> dict is lossless (golden schema)."""
        run = simulated_run()
        doc = run.to_dict()
        path = save_json(doc, tmp_path / "run.json")
        reread = load_json(path)
        assert reread == json.loads(json.dumps(doc))
        rebuilt = run_stats_from_dict(reread)
        assert rebuilt.accelerator == run.accelerator
        assert rebuilt.network == run.network
        assert len(rebuilt.layers) == len(run.layers)
        for a, b in zip(rebuilt.layers, run.layers):
            assert a == b
        assert rebuilt.to_dict() == doc

    def test_schema_version_field_present(self):
        doc = simulated_run().to_dict()
        assert doc["schema_version"] == STATS_SCHEMA_VERSION
        assert doc["kind"] == "run_stats"
        assert doc["totals"]["cycles"] == pytest.approx(sum(l["cycles"] for l in doc["layers"]))

    def test_unknown_schema_version_rejected(self):
        doc = simulated_run().to_dict()
        doc["schema_version"] = 999
        with pytest.raises(ValueError, match="schema version"):
            RunStats.from_dict(doc)

    def test_handwritten_layer_roundtrip(self):
        layer = LayerStats(
            "conv1", cycles=10.0, energy=EnergyBreakdown(1, 2, 3, 4),
            macs=99, run_cycles=6.0, skip_cycles=1.0, idle_cycles=3.0,
            extras={"n_passes": 2.0},
        )
        assert LayerStats.from_dict(layer.to_dict()) == layer


class TestExperimentEnvelope:
    def test_envelope_is_versioned_and_self_describing(self):
        result = breakdown_experiment("alexnet")
        env = experiment_envelope("fig11", result, "AlexNet breakdown")
        assert env["schema"] == EXPERIMENT_SCHEMA
        assert env["schema_version"] == 1
        assert env["experiment"] == "fig11"
        assert env["stats_schema_version"] == STATS_SCHEMA_VERSION
        # Embedded RunStats became versioned run-stats documents.
        for run_doc in env["result"]["runs"].values():
            assert run_doc["kind"] == "run_stats"
            run_stats_from_dict(run_doc)  # parse, don't just eyeball

    def test_envelope_is_json_serializable(self):
        env = experiment_envelope("fig11", breakdown_experiment("alexnet"))
        json.dumps(env)

    def test_csv_rows_only_for_breakdowns(self):
        result = breakdown_experiment("alexnet")
        rows = experiment_csv_rows(result)
        assert len(rows) == sum(len(r.layers) for r in result.runs.values())
        assert experiment_csv_rows(object()) == []


class TestProfile:
    def test_profile_alexnet_end_to_end(self):
        result = profile_network("alexnet")
        assert {r.accelerator for r in result.rows} == {
            "eyeriss16", "eyeriss8", "zena16", "zena8", "olaccel16", "olaccel8",
        }
        for row in result.rows:
            assert row.sim_cycles > 0
            assert row.wall_ms >= 0.0
            assert row.sim_ms == pytest.approx(row.sim_cycles / (CLOCK_MHZ * 1e3))
        ol = next(r for r in result.rows if r.accelerator == "olaccel16")
        assert 0.0 < ol.run_fraction < 1.0
        assert ol.run_fraction + ol.skip_fraction + ol.idle_fraction == pytest.approx(1.0, abs=0.05)
        assert result.event_trace["passes"] == 512
        assert result.event_trace["bcast"] > 0
        assert result.counters  # per-layer obs snapshot travelled along

    def test_profile_to_dict_schema(self):
        doc = profile_network("alexnet", event_sim_passes=64).to_dict()
        assert doc["kind"] == "profile"
        assert doc["schema_version"] == STATS_SCHEMA_VERSION
        assert doc["clock_mhz"] == CLOCK_MHZ
        json.dumps(doc)

    def test_profile_format_mentions_trace(self):
        text = profile_network("alexnet", event_sim_passes=32).format()
        assert "micro-trace" in text and "olaccel16" in text


class TestCliJsonCsv:
    def test_run_json_single_experiment(self, tmp_path, capsys):
        path = tmp_path / "out.json"
        assert main(["run", "tab1", "--json", str(path)]) == 0
        env = load_json(path)
        assert env["schema"] == EXPERIMENT_SCHEMA and env["experiment"] == "tab1"

    def test_run_json_multiple_experiments_keyed_by_id(self, tmp_path):
        path = tmp_path / "out.json"
        assert main(["run", "tab1", "fig17", "--json", str(path)]) == 0
        data = load_json(path)
        assert set(data) == {"tab1", "fig17"}
        assert data["fig17"]["schema"] == EXPERIMENT_SCHEMA

    def test_run_csv_breakdown(self, tmp_path):
        path = tmp_path / "out.csv"
        assert main(["run", "fig11", "--csv", str(path)]) == 0
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("accelerator,")
        assert len(lines) > 6  # 6 accelerators x 5 conv layers + header

    def test_run_csv_without_rows_fails(self, tmp_path, capsys):
        path = tmp_path / "out.csv"
        assert main(["run", "tab1", "--csv", str(path)]) == 1
        assert not path.exists()
        assert "no per-layer rows" in capsys.readouterr().err

    def test_run_unknown_id_lists_available(self, capsys):
        assert main(["run", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown" in err and "fig11" in err and "tab1" in err

    def test_compare_json(self, tmp_path):
        path = tmp_path / "cmp.json"
        assert main(["compare", "alexnet", "--json", str(path)]) == 0
        env = load_json(path)
        assert env["experiment"] == "compare"

    def test_profile_cli_end_to_end(self, tmp_path, capsys):
        path = tmp_path / "profile.json"
        assert main(["profile", "alexnet", "--json", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Profile" in out and "wall ms" in out
        env = load_json(path)
        assert env["experiment"] == "profile"
        assert env["result"]["kind"] == "profile"

    def test_profile_unknown_network(self, capsys):
        assert main(["profile", "lenet"]) == 2
        assert "unknown network" in capsys.readouterr().err
