"""Docs-example smoke test: the fenced commands in the docs must run.

Extracts every ````bash```` block from README.md and docs/*.md, keeps
the ``python -m repro …`` lines (joining backslash continuations,
stripping the ``PYTHONPATH=src`` prefix), and executes each document's
commands in order inside a private scratch directory — so the
checkpoint/resume and cache sequences in the docs exercise exactly the
state the previous line left behind. A documented command that exits
non-zero fails the build: examples rot otherwise.

Heavy commands (mini-model training, the full-size benchmark suite,
external scripts) are skipped by an explicit pattern list — everything
else in the docs is seconds-scale by design.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]
DOCS = [REPO / "README.md"] + sorted((REPO / "docs").glob("*.md"))

_BASH_BLOCK = re.compile(r"```bash\n(.*?)```", re.S)

#: substrings that mark a documented command as too heavy (or too
#: external) for the smoke tier; everything else must run clean.
SKIP_PATTERNS = (
    "run all",            # trains every mini model
    "run fig2", "run fig3", "run fig14",  # mini-model training
    "--accuracy quant",   # mini-model training
    "pytest",             # the suite running itself
    "REPRO_KILL_AFTER_CELLS",  # deliberate crash demos
    "repro serve",        # long-running server — covered by tests/test_serve.py
    "repro work runs/spool",  # needs a live server's spool to join
    "--connect",          # needs a live server to dial — covered by
                          # tests/test_remote.py and tests/chaos/
)


def _commands(doc: Path):
    """The runnable ``python -m repro`` commands of one document, in order."""
    out = []
    for block in _BASH_BLOCK.findall(doc.read_text(encoding="utf-8")):
        logical = []
        for line in block.splitlines():
            if logical and logical[-1].endswith("\\"):
                logical[-1] = logical[-1][:-1] + " " + line.strip()
            else:
                logical.append(line.strip())
        for line in logical:
            if line.startswith("PYTHONPATH=src "):
                line = line[len("PYTHONPATH=src "):]
            if not line.startswith("python -m repro "):
                continue
            if line.split("#", 1)[0].rstrip().endswith("bench"):
                continue  # full-size bench is ~a minute; --smoke runs below
            if any(pat in line for pat in SKIP_PATTERNS):
                continue
            out.append(line)
    return out


def iter_cases():
    for doc in DOCS:
        commands = _commands(doc)
        if commands:
            yield pytest.param(doc, commands, id=doc.name)


CASES = list(iter_cases())


def test_extraction_finds_a_healthy_corpus():
    """Guard the extractor itself: if the docs or the regex drift and
    nothing gets extracted, the per-doc tests would silently vanish."""
    total = sum(len(commands) for _, commands in (p.values for p in CASES))
    assert total >= 5, f"only {total} runnable doc commands extracted"
    names = {doc.name for doc, _ in (p.values for p in CASES)}
    assert "README.md" in names and "EXPLORE.md" in names


@pytest.mark.parametrize("doc,commands", [p.values for p in CASES], ids=[p.id for p in CASES])
def test_documented_commands_run(doc, commands, tmp_path):
    env = {
        **os.environ,
        "PYTHONPATH": str(REPO / "src"),
        "HOME": str(tmp_path),  # `~/.repro-cache` examples land here
    }
    for var in ("REPRO_KILL_AFTER_CELLS", "REPRO_CACHE_DIR", "REPRO_NO_CACHE"):
        env.pop(var, None)
    for command in commands:
        runnable = command.replace("python -m repro", f"{sys.executable} -m repro", 1)
        proc = subprocess.run(
            runnable,
            shell=True,
            cwd=tmp_path,
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, (
            f"{doc.name}: documented command failed ({proc.returncode}):\n"
            f"  $ {command}\n{proc.stderr[-2000:]}"
        )
