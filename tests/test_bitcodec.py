"""Bit-level chunk serialization tests (repro.arch.bitcodec)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.arch import WEIGHT_CHUNK_BITS, WeightChunk, pack_weights
from repro.arch.bitcodec import (
    MAX_SPILL_CHUNKS,
    decode_chunk,
    decode_table,
    encode_chunk,
    encode_table,
)


class TestSingleChunk:
    def test_plain_chunk_roundtrip(self, rng):
        chunk = WeightChunk(lanes=tuple(int(v) for v in rng.integers(-7, 8, 16)))
        decoded = decode_chunk(encode_chunk(chunk))
        assert decoded.lanes == chunk.lanes
        assert not decoded.has_single_outlier and not decoded.has_multi_outlier

    def test_word_fits_80_bits(self, rng):
        chunk = WeightChunk(lanes=tuple(int(v) for v in rng.integers(-7, 8, 16)))
        assert 0 <= encode_chunk(chunk) < (1 << WEIGHT_CHUNK_BITS)

    def test_single_outlier_roundtrip(self):
        chunk = WeightChunk(lanes=(0, -3, 0, 5) + (0,) * 12, ol_idx=3, ol_msb=7)
        decoded = decode_chunk(encode_chunk(chunk))
        assert decoded.ol_idx == 3
        assert decoded.ol_msb == 7
        assert decoded.lanes == chunk.lanes

    def test_negative_outlier_with_zero_lsb(self):
        """Level -8: lsb magnitude 0, sign must survive the trip."""
        chunk = WeightChunk(lanes=(0,) * 16, ol_idx=4, ol_msb=-1)
        decoded = decode_chunk(encode_chunk(chunk))
        assert decoded.ol_msb == -1
        assert decoded.ol_idx == 4

    def test_multi_outlier_needs_spill_context(self):
        chunk = WeightChunk(lanes=(0,) * 16, ol_ptr=0)
        with pytest.raises(ValueError, match="spill"):
            encode_chunk(chunk)

    def test_field_range_validation(self):
        with pytest.raises(ValueError):
            encode_chunk(WeightChunk(lanes=(9,) + (0,) * 15))
        with pytest.raises(ValueError):
            encode_chunk(WeightChunk(lanes=(0,) * 16, ol_msb=16))
        with pytest.raises(ValueError):
            decode_chunk(1 << WEIGHT_CHUNK_BITS)

    @given(hnp.arrays(np.int64, 16, elements=st.integers(-7, 7)))
    @settings(max_examples=80, deadline=None)
    def test_plain_roundtrip_property(self, lanes):
        chunk = WeightChunk(lanes=tuple(int(v) for v in lanes))
        assert decode_chunk(encode_chunk(chunk)).lanes == chunk.lanes


class TestTableCodec:
    @given(hnp.arrays(np.int64, (32, 9), elements=st.integers(-127, 127)))
    @settings(max_examples=30, deadline=None)
    def test_full_pipeline_bit_roundtrip(self, levels):
        """levels -> pack -> encode -> decode -> unpack == levels.

        This closes the loop: the integer weights survive a trip through
        the literal 80-bit on-chip representation.
        """
        packed = pack_weights(levels)
        base_words, spill_words = encode_table(packed.base_chunks, packed.spill_chunks)
        bases, spills = decode_table(base_words, spill_words)
        packed.base_chunks = bases
        packed.spill_chunks = spills
        np.testing.assert_array_equal(packed.unpack(), levels)

    def test_negative_even_outliers_roundtrip(self):
        """Levels like -8/-16 have zero LSB magnitude in multiple lanes."""
        levels = np.zeros((16, 1), dtype=np.int64)
        levels[1, 0] = -8
        levels[9, 0] = -16
        packed = pack_weights(levels)
        base_words, spill_words = encode_table(packed.base_chunks, packed.spill_chunks)
        bases, spills = decode_table(base_words, spill_words)
        packed.base_chunks = bases
        packed.spill_chunks = spills
        np.testing.assert_array_equal(packed.unpack(), levels)

    def test_spill_limit_enforced(self):
        spills = [WeightChunk(lanes=(0,) * 16, is_spill=True)] * (MAX_SPILL_CHUNKS + 1)
        with pytest.raises(ValueError, match="OLptr space"):
            encode_table([], spills)

    def test_storage_size(self, rng):
        levels = rng.integers(-7, 8, size=(16, 25))
        packed = pack_weights(levels)
        base_words, spill_words = encode_table(packed.base_chunks, packed.spill_chunks)
        assert len(base_words) == 25
        assert spill_words == []
