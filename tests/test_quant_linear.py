"""Unit + property tests for linear quantization grids (repro.quant.linear)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.quant import LinearQuantizer, quantize_linear, signed_levels, unsigned_levels


class TestGridSizes:
    def test_signed_levels(self):
        assert signed_levels(4) == 7
        assert signed_levels(8) == 127
        assert signed_levels(16) == 32767

    def test_unsigned_levels(self):
        assert unsigned_levels(4) == 15
        assert unsigned_levels(8) == 255
        assert unsigned_levels(16) == 65535

    def test_too_few_bits_raise(self):
        with pytest.raises(ValueError):
            signed_levels(1)
        with pytest.raises(ValueError):
            unsigned_levels(0)


class TestLinearQuantizer:
    def test_zero_is_exact(self):
        q = LinearQuantizer(delta=0.1, bits=4)
        assert q.quantize(np.array([0.0]))[0] == 0

    def test_clipping(self):
        q = LinearQuantizer(delta=0.1, bits=4, signed=True)
        assert q.quantize(np.array([100.0]))[0] == 7
        assert q.quantize(np.array([-100.0]))[0] == -7

    def test_unsigned_floor_at_zero(self):
        q = LinearQuantizer(delta=0.1, bits=4, signed=False)
        assert q.quantize(np.array([-5.0]))[0] == 0
        assert q.quantize(np.array([5.0]))[0] == 15

    def test_from_range_covers_max(self):
        q = LinearQuantizer.from_range(3.5, bits=4)
        assert q.max_value == pytest.approx(3.5)
        assert q.quantize(np.array([3.5]))[0] == 7

    def test_from_range_degenerate_zero(self):
        q = LinearQuantizer.from_range(0.0, bits=4)
        np.testing.assert_array_equal(q.quantize(np.zeros(3)), np.zeros(3))

    def test_invalid_delta_raises(self):
        with pytest.raises(ValueError):
            LinearQuantizer(delta=0.0, bits=4).quantize(np.ones(1))

    @given(
        hnp.arrays(
            np.float64,
            st.integers(1, 64),
            elements=st.floats(-1e3, 1e3, allow_nan=False, allow_infinity=False),
        ),
        st.sampled_from([4, 6, 8, 16]),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_error_bound(self, values, bits):
        """|roundtrip(x) - x| <= delta/2 for every in-range value."""
        max_abs = float(np.abs(values).max())
        q = LinearQuantizer.from_range(max_abs, bits=bits)
        error = np.abs(q.roundtrip(values) - values)
        assert (error <= q.delta / 2 + 1e-12).all()

    @given(
        hnp.arrays(np.float64, 32, elements=st.floats(-100, 100, allow_nan=False)),
    )
    @settings(max_examples=40, deadline=None)
    def test_quantize_monotone(self, values):
        """Quantization preserves ordering."""
        q = LinearQuantizer.from_range(max(float(np.abs(values).max()), 1e-6), bits=4)
        order = np.argsort(values)
        levels = q.quantize(values)[order]
        assert (np.diff(levels) >= 0).all()

    @given(st.floats(0.001, 100.0), st.sampled_from([4, 8]))
    @settings(max_examples=40, deadline=None)
    def test_levels_within_grid(self, max_abs, bits):
        rng = np.random.default_rng(0)
        values = rng.normal(0, max_abs, size=100)
        q = LinearQuantizer.from_range(max_abs, bits=bits)
        levels = q.quantize(values)
        assert levels.max() <= q.max_level
        assert levels.min() >= q.min_level

    def test_idempotent(self, rng):
        values = rng.normal(size=50)
        q = LinearQuantizer.from_range(float(np.abs(values).max()), bits=4)
        once = q.roundtrip(values)
        twice = q.roundtrip(once)
        np.testing.assert_allclose(once, twice)


class TestQuantizeLinearHelper:
    def test_empty_array(self):
        out = quantize_linear(np.zeros(0), bits=4)
        assert out.size == 0

    def test_preserves_shape(self, rng):
        x = rng.normal(size=(3, 4, 5))
        assert quantize_linear(x, bits=8).shape == (3, 4, 5)

    def test_finer_bits_reduce_error(self, rng):
        x = rng.normal(size=1000)
        err4 = np.abs(quantize_linear(x, 4) - x).mean()
        err8 = np.abs(quantize_linear(x, 8) - x).mean()
        assert err8 < err4
