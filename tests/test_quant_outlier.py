"""Tests for outlier-aware quantization (repro.quant.outlier) — Sec. II."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant import (
    OutlierQuantConfig,
    magnitude_threshold,
    mse,
    quantize_activations,
    quantize_weights,
    sqnr_db,
)


def heavy_tailed(rng, n=20000, tail=0.02, scale=8.0):
    """Gaussian bulk plus a small fraction of large outliers (Fig. 1 shape)."""
    x = rng.normal(0, 1.0, size=n)
    idx = rng.random(n) < tail
    x[idx] *= scale
    return x


class TestThreshold:
    def test_ratio_zero_is_max(self, rng):
        x = rng.normal(size=100)
        assert magnitude_threshold(x, 0.0) == pytest.approx(float(np.abs(x).max()))

    def test_quantile_places_ratio_above(self, rng):
        x = rng.normal(size=20000)
        t = magnitude_threshold(x, 0.03)
        above = (np.abs(x) > t).mean()
        assert above == pytest.approx(0.03, abs=0.005)

    def test_over_nonzero_ignores_zeros(self, rng):
        x = np.concatenate([np.zeros(9000), rng.uniform(1, 2, size=1000)])
        t_all = magnitude_threshold(x, 0.03, over_nonzero=False)
        t_nz = magnitude_threshold(x, 0.03, over_nonzero=True)
        assert t_all < t_nz  # zeros drag the plain quantile down

    def test_empty(self):
        assert magnitude_threshold(np.zeros(0), 0.03) == 0.0


class TestWeightQuantization:
    def test_outlier_ratio_close_to_target(self, rng):
        w = heavy_tailed(rng)
        qt = quantize_weights(w, ratio=0.03)
        assert qt.outlier_ratio == pytest.approx(0.03, abs=0.01)

    def test_levels_fit_outlier_grid(self, rng):
        qt = quantize_weights(heavy_tailed(rng), ratio=0.03)
        assert np.abs(qt.levels).max() <= 127

    def test_normal_values_fit_4bit(self, rng):
        qt = quantize_weights(heavy_tailed(rng), ratio=0.03)
        normal = qt.levels[~qt.outlier_mask]
        assert np.abs(normal).max() <= 7

    def test_roundtrip_error_bound_in_bulk(self, rng):
        w = heavy_tailed(rng)
        qt = quantize_weights(w, ratio=0.03)
        deq = qt.dequantize()
        in_range = np.abs(w) <= 127 * qt.delta
        err = np.abs(deq - w)[in_range]
        assert (err <= qt.delta / 2 + 1e-12).all()

    def test_oaq_beats_linear_on_heavy_tails(self, rng):
        """The paper's core claim: same 4 bits, far less error on the bulk."""
        w = heavy_tailed(rng, tail=0.02, scale=10.0)
        from repro.quant import quantize_linear

        linear = quantize_linear(w, bits=4)
        oaq = quantize_weights(w, ratio=0.03).dequantize()
        assert mse(w, oaq) < mse(w, linear) / 4
        assert sqnr_db(w, oaq) > sqnr_db(w, linear) + 6.0

    def test_ratio_zero_equals_linear(self, rng):
        """OAQ at ratio 0 with equal bit widths is plain linear quantization."""
        w = rng.normal(size=500)
        from repro.quant import quantize_linear

        oaq = quantize_weights(w, ratio=0.0, normal_bits=4, outlier_bits=4).dequantize()
        linear = quantize_linear(w, bits=4)
        np.testing.assert_allclose(oaq, linear, atol=1e-12)

    def test_all_zero_weights(self):
        qt = quantize_weights(np.zeros(64), ratio=0.03)
        assert (qt.levels == 0).all()
        assert qt.outlier_count == 0

    @given(st.floats(0.0, 0.2), st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_monotone_error_in_ratio(self, ratio, seed):
        """More outliers kept at high precision -> no worse reconstruction."""
        rng = np.random.default_rng(seed)
        w = heavy_tailed(rng, n=4000)
        base = mse(w, quantize_weights(w, ratio=0.0, outlier_bits=4, normal_bits=4).dequantize())
        better = mse(w, quantize_weights(w, ratio=max(ratio, 0.001)).dequantize())
        assert better <= base + 1e-12


class TestActivationQuantization:
    def test_rejects_negative(self, rng):
        with pytest.raises(ValueError, match="non-negative"):
            quantize_activations(rng.normal(size=10), threshold=1.0)

    def test_outliers_exceed_normal_grid(self, rng):
        a = np.abs(heavy_tailed(rng))
        t = magnitude_threshold(a, 0.03, over_nonzero=True)
        qt = quantize_activations(a, threshold=t)
        assert qt.outlier_mask.any()
        assert (qt.levels[qt.outlier_mask] > 15).all()
        assert qt.levels.max() <= 65535

    def test_effective_ratio_uses_nonzero(self, rng):
        a = np.concatenate([np.zeros(5000), np.abs(heavy_tailed(rng, n=5000))])
        t = magnitude_threshold(a, 0.03, over_nonzero=True)
        qt = quantize_activations(a, threshold=t)
        assert qt.effective_outlier_ratio() == pytest.approx(0.03, abs=0.01)
        assert qt.outlier_ratio < qt.effective_outlier_ratio()

    def test_zero_threshold_degenerate(self):
        qt = quantize_activations(np.zeros(16), threshold=0.0)
        assert (qt.levels == 0).all()

    def test_8bit_outlier_grid(self, rng):
        a = np.abs(heavy_tailed(rng)) * 100
        t = magnitude_threshold(a, 0.03, over_nonzero=True)
        qt = quantize_activations(a, threshold=t, outlier_bits=8)
        assert qt.levels.max() <= 255


class TestConfig:
    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            OutlierQuantConfig(ratio=1.0)
        with pytest.raises(ValueError):
            OutlierQuantConfig(ratio=-0.1)

    def test_outlier_narrower_than_normal(self):
        with pytest.raises(ValueError):
            OutlierQuantConfig(normal_bits=8, outlier_bits=4)
