"""Bit-exact equivalence of the vectorized hot paths vs their
``slow_reference`` scalar twins, across randomized shapes and densities,
including the fault-injection interplay (rate 0 and rate > 0)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.act_packing import pack_activations, unpack_activations
from repro.arch.bitcodec import decode_packed, decode_table, encode_packed, encode_table
from repro.arch.chunks import WEIGHT_CHUNK_BITS, WeightChunk
from repro.arch.packing import PackedWeights, pack_weights
from repro.errors import ChunkIntegrityError
from repro.faults import FaultPlan
from repro.faults.datapath import corrupt_packed_weights, faulty_olaccel_conv2d
from repro.obs import Registry
from repro.olaccel.functional import olaccel_conv2d


def _random_levels(rng, out_c, reduction, density):
    levels = rng.integers(-7, 8, size=(out_c, reduction))
    outliers = rng.random(size=levels.shape) < density
    magnitudes = rng.integers(8, 128, size=levels.shape)
    signs = rng.choice(np.array([-1, 1]), size=levels.shape)
    return np.where(outliers, signs * magnitudes, levels).astype(np.int64)


def _random_shapes(seed, n):
    rng = np.random.default_rng(seed)
    for _ in range(n):
        out_c = int(rng.integers(1, 70))
        reduction = int(rng.integers(1, 50))
        density = float(rng.choice(np.array([0.0, 0.01, 0.05, 0.2, 0.6])))
        yield rng, out_c, reduction, density


# ---------------------------------------------------------------------------
# packing
# ---------------------------------------------------------------------------


def test_pack_weights_chunks_bit_exact():
    for rng, out_c, reduction, density in _random_shapes(101, 25):
        levels = _random_levels(rng, out_c, reduction, density)
        fast = pack_weights(levels)
        slow = pack_weights(levels, slow_reference=True)
        assert fast.base_chunks == slow.base_chunks
        assert fast.spill_chunks == slow.spill_chunks
        assert fast == slow
        assert fast.single_outlier_chunks == slow.single_outlier_chunks
        assert fast.multi_outlier_chunks == slow.multi_outlier_chunks
        assert fast.total_bits == slow.total_bits


def test_unpack_round_trips_both_paths():
    for rng, out_c, reduction, density in _random_shapes(202, 25):
        levels = _random_levels(rng, out_c, reduction, density)
        fast = pack_weights(levels)
        slow = pack_weights(levels, slow_reference=True)
        assert np.array_equal(fast.unpack(), levels)
        assert np.array_equal(fast.unpack(slow_reference=True), levels)
        assert np.array_equal(slow.unpack(), levels)
        assert np.array_equal(slow.unpack(slow_reference=True), levels)


def test_pack_weights_extreme_levels():
    # every boundary level, including the sign-in-nibble -8/-127 cases
    levels = np.array([[-127, -8, -7, -1, 0, 1, 7, 8, 127, 64, -64, 15, -15, 56, -56, 120]])
    fast = pack_weights(levels.T @ np.ones((1, 3), dtype=np.int64))
    slow = pack_weights(levels.T @ np.ones((1, 3), dtype=np.int64), slow_reference=True)
    assert fast.base_chunks == slow.base_chunks
    assert fast.spill_chunks == slow.spill_chunks


def test_empty_reduction_matrix():
    levels = np.zeros((5, 0), dtype=np.int64)
    fast = pack_weights(levels)
    slow = pack_weights(levels, slow_reference=True)
    assert fast.base_chunks == slow.base_chunks == []
    assert fast.unpack().shape == (5, 0)


# ---------------------------------------------------------------------------
# outlier-count caching regression (the O(n)-scan-per-access fix)
# ---------------------------------------------------------------------------


def test_outlier_counts_cached_on_construction():
    levels = _random_levels(np.random.default_rng(3), 48, 20, 0.2)
    packed = pack_weights(levels)
    single, multi = packed.single_outlier_chunks, packed.multi_outlier_chunks
    assert single > 0 and multi > 0
    # in-place mutation of a materialized list is not rescanned: the counts
    # were cached at construction
    packed.base_chunks.append(WeightChunk(lanes=(0,) * 16, ol_idx=3, ol_msb=5))
    assert packed.single_outlier_chunks == single
    assert packed.multi_outlier_chunks == multi


def test_outlier_counts_recomputed_on_setter():
    levels = _random_levels(np.random.default_rng(4), 32, 10, 0.3)
    packed = pack_weights(levels)
    plain = [WeightChunk(lanes=(1,) * 16) for _ in range(4)]
    single_chunk = WeightChunk(lanes=(0,) * 16, ol_idx=2, ol_msb=-3)
    packed.base_chunks = plain + [single_chunk]
    assert packed.single_outlier_chunks == 1
    assert packed.multi_outlier_chunks == 0
    packed.spill_chunks = []
    assert packed.n_spill == 0


def test_chunk_list_assignment_preserves_other_half():
    # assigning base_chunks on a table-backed object must not lose spills
    levels = _random_levels(np.random.default_rng(5), 32, 12, 0.4)
    packed = pack_weights(levels)  # table-backed, chunks not materialized
    n_spill = packed.n_spill
    assert n_spill > 0
    packed.base_chunks = pack_weights(levels, slow_reference=True).base_chunks
    assert len(packed.spill_chunks) == n_spill
    assert np.array_equal(packed.unpack(slow_reference=True), levels)


# ---------------------------------------------------------------------------
# bit codec
# ---------------------------------------------------------------------------


def test_encode_packed_matches_encode_table():
    for rng, out_c, reduction, density in _random_shapes(303, 25):
        levels = _random_levels(rng, out_c, reduction, min(density, 0.05))
        packed = pack_weights(levels)
        if packed.n_spill > 254:
            continue
        fast_base, fast_spill = encode_packed(packed)
        slow_base, slow_spill = encode_table(packed.base_chunks, packed.spill_chunks)
        assert fast_base == slow_base
        assert fast_spill == slow_spill


def test_decode_packed_matches_decode_table():
    for rng, out_c, reduction, density in _random_shapes(404, 25):
        levels = _random_levels(rng, out_c, reduction, min(density, 0.05))
        packed = pack_weights(levels)
        if packed.n_spill > 254:
            continue
        base_words, spill_words = encode_packed(packed)
        decoded = decode_packed(
            base_words,
            spill_words,
            n_groups=packed.n_groups,
            reduction=packed.reduction,
            out_channels=packed.out_channels,
        )
        bases, spills = decode_table(base_words, spill_words)
        assert decoded.base_chunks == bases
        assert decoded.spill_chunks == spills
        assert np.array_equal(decoded.unpack(), levels)


def test_decode_packed_corrupted_words_match_scalar():
    rng = np.random.default_rng(505)
    for _ in range(40):
        levels = _random_levels(rng, 33, 20, 0.05)
        packed = pack_weights(levels)
        base_words, spill_words = encode_packed(packed)
        for _ in range(6):
            index = int(rng.integers(len(base_words)))
            base_words[index] ^= 1 << int(rng.integers(WEIGHT_CHUNK_BITS))
        kwargs = dict(
            n_groups=packed.n_groups,
            reduction=packed.reduction,
            out_channels=packed.out_channels,
        )
        bases, spills = decode_table(base_words, spill_words, strict=False)
        decoded = decode_packed(base_words, spill_words, strict=False, **kwargs)
        assert decoded.base_chunks == bases
        assert decoded.spill_chunks == spills
        # strict mode raises (or not) identically
        try:
            decode_table(base_words, spill_words, strict=True)
            scalar_raised = False
        except ChunkIntegrityError:
            scalar_raised = True
        if scalar_raised:
            with pytest.raises(ChunkIntegrityError):
                decode_packed(base_words, spill_words, strict=True, **kwargs)
        else:
            decode_packed(base_words, spill_words, strict=True, **kwargs)


def test_decode_packed_rejects_oversized_word():
    with pytest.raises(ChunkIntegrityError):
        decode_packed([1 << WEIGHT_CHUNK_BITS], [], n_groups=1, reduction=1, out_channels=1)


# ---------------------------------------------------------------------------
# activation packing
# ---------------------------------------------------------------------------


def test_pack_activations_fast_matches_slow():
    rng = np.random.default_rng(606)
    for _ in range(20):
        c, h, w = (int(rng.integers(1, 40)), int(rng.integers(1, 12)), int(rng.integers(1, 12)))
        levels = rng.integers(0, 16, size=(c, h, w))
        outliers = rng.random(size=levels.shape) < 0.1
        levels = np.where(outliers, rng.integers(16, 300, size=levels.shape), levels).astype(np.int64)
        fast = pack_activations(levels)
        slow = pack_activations(levels, slow_reference=True)
        assert np.array_equal(fast.dense, slow.dense)
        assert fast.outliers == slow.outliers
        assert np.array_equal(unpack_activations(fast), levels)
        assert np.array_equal(unpack_activations(fast, slow_reference=True), levels)
        assert np.array_equal(unpack_activations(slow), levels)


# ---------------------------------------------------------------------------
# functional datapath
# ---------------------------------------------------------------------------


def test_olaccel_conv2d_fast_matches_slow():
    rng = np.random.default_rng(707)
    acts = rng.integers(0, 30, size=(1, 8, 7, 7)).astype(np.int64)
    weights = _random_levels(rng, 24, 8 * 9, 0.1).reshape(24, 8, 3, 3)
    fast = olaccel_conv2d(acts, weights, pad=1)
    slow = olaccel_conv2d(acts, weights, pad=1, slow_reference=True)
    assert np.array_equal(fast.psum, slow.psum)
    assert fast.cycles == slow.cycles
    assert np.array_equal(fast.pass_cycles, slow.pass_cycles)
    assert fast.outlier_broadcasts == slow.outlier_broadcasts


# ---------------------------------------------------------------------------
# fault-injection interplay
# ---------------------------------------------------------------------------


def test_faults_rate_zero_identity_both_paths():
    rng = np.random.default_rng(808)
    levels = _random_levels(rng, 32, 18, 0.05)
    plan = FaultPlan(rate=0.0, seed=9)
    for slow in (False, True):
        packed = pack_weights(levels, slow_reference=slow)
        rebuilt = corrupt_packed_weights(packed, plan)
        assert np.array_equal(rebuilt.unpack(), levels)
        assert np.array_equal(rebuilt.unpack(slow_reference=True), levels)


def test_faults_nonzero_rate_identical_across_packing_paths():
    # FaultPlan's rng is stateless per (seed, surface): identical word
    # lists get identical strikes, so the fast- and slow-packed tables
    # degrade identically.
    rng = np.random.default_rng(909)
    levels = _random_levels(rng, 48, 22, 0.05)
    plan = FaultPlan(rate=5e-3, seed=31)

    results = []
    for slow in (False, True):
        obs = Registry()
        packed = pack_weights(levels, slow_reference=slow)
        rebuilt = corrupt_packed_weights(packed, plan, policy="degrade", obs=obs)
        counters = obs.snapshot()
        results.append((rebuilt.unpack(), counters))
    (fast_levels, fast_counters), (slow_levels, slow_counters) = results
    assert np.array_equal(fast_levels, slow_levels)
    assert fast_counters == slow_counters


def test_faulty_conv_counters_reconcile_with_fast_paths():
    rng = np.random.default_rng(111)
    acts = rng.integers(0, 25, size=(1, 4, 6, 6)).astype(np.int64)
    weights = _random_levels(rng, 16, 4 * 9, 0.08).reshape(16, 4, 3, 3)
    outcome = faulty_olaccel_conv2d(acts, weights, pad=1, plan=FaultPlan(rate=2e-3, seed=5))
    assert outcome.injected == outcome.detected + outcome.undetected
    assert outcome.undetected >= 0
