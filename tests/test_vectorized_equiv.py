"""Bit-exact equivalence of the vectorized hot paths vs their
``slow_reference`` scalar twins, across randomized shapes and densities,
including the fault-injection interplay (rate 0 and rate > 0)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.act_packing import pack_activations, unpack_activations
from repro.arch.bitcodec import decode_packed, decode_table, encode_packed, encode_table
from repro.arch.chunks import WEIGHT_CHUNK_BITS, WeightChunk
from repro.arch.packing import PackedWeights, pack_weights
from repro.errors import ChunkIntegrityError
from repro.faults import FaultPlan
from repro.faults.datapath import corrupt_packed_weights, faulty_olaccel_conv2d
from repro.obs import Registry
from repro.olaccel.functional import olaccel_conv2d


def _random_levels(rng, out_c, reduction, density):
    levels = rng.integers(-7, 8, size=(out_c, reduction))
    outliers = rng.random(size=levels.shape) < density
    magnitudes = rng.integers(8, 128, size=levels.shape)
    signs = rng.choice(np.array([-1, 1]), size=levels.shape)
    return np.where(outliers, signs * magnitudes, levels).astype(np.int64)


def _random_shapes(seed, n):
    rng = np.random.default_rng(seed)
    for _ in range(n):
        out_c = int(rng.integers(1, 70))
        reduction = int(rng.integers(1, 50))
        density = float(rng.choice(np.array([0.0, 0.01, 0.05, 0.2, 0.6])))
        yield rng, out_c, reduction, density


# ---------------------------------------------------------------------------
# packing
# ---------------------------------------------------------------------------


def test_pack_weights_chunks_bit_exact():
    for rng, out_c, reduction, density in _random_shapes(101, 25):
        levels = _random_levels(rng, out_c, reduction, density)
        fast = pack_weights(levels)
        slow = pack_weights(levels, slow_reference=True)
        assert fast.base_chunks == slow.base_chunks
        assert fast.spill_chunks == slow.spill_chunks
        assert fast == slow
        assert fast.single_outlier_chunks == slow.single_outlier_chunks
        assert fast.multi_outlier_chunks == slow.multi_outlier_chunks
        assert fast.total_bits == slow.total_bits


def test_unpack_round_trips_both_paths():
    for rng, out_c, reduction, density in _random_shapes(202, 25):
        levels = _random_levels(rng, out_c, reduction, density)
        fast = pack_weights(levels)
        slow = pack_weights(levels, slow_reference=True)
        assert np.array_equal(fast.unpack(), levels)
        assert np.array_equal(fast.unpack(slow_reference=True), levels)
        assert np.array_equal(slow.unpack(), levels)
        assert np.array_equal(slow.unpack(slow_reference=True), levels)


def test_pack_weights_extreme_levels():
    # every boundary level, including the sign-in-nibble -8/-127 cases
    levels = np.array([[-127, -8, -7, -1, 0, 1, 7, 8, 127, 64, -64, 15, -15, 56, -56, 120]])
    fast = pack_weights(levels.T @ np.ones((1, 3), dtype=np.int64))
    slow = pack_weights(levels.T @ np.ones((1, 3), dtype=np.int64), slow_reference=True)
    assert fast.base_chunks == slow.base_chunks
    assert fast.spill_chunks == slow.spill_chunks


def test_empty_reduction_matrix():
    levels = np.zeros((5, 0), dtype=np.int64)
    fast = pack_weights(levels)
    slow = pack_weights(levels, slow_reference=True)
    assert fast.base_chunks == slow.base_chunks == []
    assert fast.unpack().shape == (5, 0)


# ---------------------------------------------------------------------------
# outlier-count caching regression (the O(n)-scan-per-access fix)
# ---------------------------------------------------------------------------


def test_outlier_counts_cached_on_construction():
    levels = _random_levels(np.random.default_rng(3), 48, 20, 0.2)
    packed = pack_weights(levels)
    single, multi = packed.single_outlier_chunks, packed.multi_outlier_chunks
    assert single > 0 and multi > 0
    # in-place mutation of a materialized list is not rescanned: the counts
    # were cached at construction
    packed.base_chunks.append(WeightChunk(lanes=(0,) * 16, ol_idx=3, ol_msb=5))
    assert packed.single_outlier_chunks == single
    assert packed.multi_outlier_chunks == multi


def test_outlier_counts_recomputed_on_setter():
    levels = _random_levels(np.random.default_rng(4), 32, 10, 0.3)
    packed = pack_weights(levels)
    plain = [WeightChunk(lanes=(1,) * 16) for _ in range(4)]
    single_chunk = WeightChunk(lanes=(0,) * 16, ol_idx=2, ol_msb=-3)
    packed.base_chunks = plain + [single_chunk]
    assert packed.single_outlier_chunks == 1
    assert packed.multi_outlier_chunks == 0
    packed.spill_chunks = []
    assert packed.n_spill == 0


def test_chunk_list_assignment_preserves_other_half():
    # assigning base_chunks on a table-backed object must not lose spills
    levels = _random_levels(np.random.default_rng(5), 32, 12, 0.4)
    packed = pack_weights(levels)  # table-backed, chunks not materialized
    n_spill = packed.n_spill
    assert n_spill > 0
    packed.base_chunks = pack_weights(levels, slow_reference=True).base_chunks
    assert len(packed.spill_chunks) == n_spill
    assert np.array_equal(packed.unpack(slow_reference=True), levels)


# ---------------------------------------------------------------------------
# bit codec
# ---------------------------------------------------------------------------


def test_encode_packed_matches_encode_table():
    for rng, out_c, reduction, density in _random_shapes(303, 25):
        levels = _random_levels(rng, out_c, reduction, min(density, 0.05))
        packed = pack_weights(levels)
        if packed.n_spill > 254:
            continue
        fast_base, fast_spill = encode_packed(packed)
        slow_base, slow_spill = encode_table(packed.base_chunks, packed.spill_chunks)
        assert fast_base == slow_base
        assert fast_spill == slow_spill


def test_decode_packed_matches_decode_table():
    for rng, out_c, reduction, density in _random_shapes(404, 25):
        levels = _random_levels(rng, out_c, reduction, min(density, 0.05))
        packed = pack_weights(levels)
        if packed.n_spill > 254:
            continue
        base_words, spill_words = encode_packed(packed)
        decoded = decode_packed(
            base_words,
            spill_words,
            n_groups=packed.n_groups,
            reduction=packed.reduction,
            out_channels=packed.out_channels,
        )
        bases, spills = decode_table(base_words, spill_words)
        assert decoded.base_chunks == bases
        assert decoded.spill_chunks == spills
        assert np.array_equal(decoded.unpack(), levels)


def test_decode_packed_corrupted_words_match_scalar():
    rng = np.random.default_rng(505)
    for _ in range(40):
        levels = _random_levels(rng, 33, 20, 0.05)
        packed = pack_weights(levels)
        base_words, spill_words = encode_packed(packed)
        for _ in range(6):
            index = int(rng.integers(len(base_words)))
            base_words[index] ^= 1 << int(rng.integers(WEIGHT_CHUNK_BITS))
        kwargs = dict(
            n_groups=packed.n_groups,
            reduction=packed.reduction,
            out_channels=packed.out_channels,
        )
        bases, spills = decode_table(base_words, spill_words, strict=False)
        decoded = decode_packed(base_words, spill_words, strict=False, **kwargs)
        assert decoded.base_chunks == bases
        assert decoded.spill_chunks == spills
        # strict mode raises (or not) identically
        try:
            decode_table(base_words, spill_words, strict=True)
            scalar_raised = False
        except ChunkIntegrityError:
            scalar_raised = True
        if scalar_raised:
            with pytest.raises(ChunkIntegrityError):
                decode_packed(base_words, spill_words, strict=True, **kwargs)
        else:
            decode_packed(base_words, spill_words, strict=True, **kwargs)


def test_decode_packed_rejects_oversized_word():
    with pytest.raises(ChunkIntegrityError):
        decode_packed([1 << WEIGHT_CHUNK_BITS], [], n_groups=1, reduction=1, out_channels=1)


# ---------------------------------------------------------------------------
# activation packing
# ---------------------------------------------------------------------------


def test_pack_activations_fast_matches_slow():
    rng = np.random.default_rng(606)
    for _ in range(20):
        c, h, w = (int(rng.integers(1, 40)), int(rng.integers(1, 12)), int(rng.integers(1, 12)))
        levels = rng.integers(0, 16, size=(c, h, w))
        outliers = rng.random(size=levels.shape) < 0.1
        levels = np.where(outliers, rng.integers(16, 300, size=levels.shape), levels).astype(np.int64)
        fast = pack_activations(levels)
        slow = pack_activations(levels, slow_reference=True)
        assert np.array_equal(fast.dense, slow.dense)
        assert fast.outliers == slow.outliers
        assert np.array_equal(unpack_activations(fast), levels)
        assert np.array_equal(unpack_activations(fast, slow_reference=True), levels)
        assert np.array_equal(unpack_activations(slow), levels)


def test_pack_activations_lazy_table_and_counts():
    # the fast packer must report FIFO counts and footprint straight
    # from the coordinate table, materializing entry objects only on
    # first .outliers access
    from repro.arch.act_packing import OUTLIER_ENTRY_BITS

    rng = np.random.default_rng(616)
    levels = rng.integers(0, 16, size=(20, 6, 6))
    mask = rng.random(size=levels.shape) < 0.15
    levels = np.where(mask, rng.integers(16, 200, size=levels.shape), levels).astype(np.int64)

    fast = pack_activations(levels)
    assert fast._outliers is None
    slow = pack_activations(levels, slow_reference=True)
    assert fast.n_outliers == len(slow.outliers)
    assert fast.outlier_bits == len(slow.outliers) * OUTLIER_ENTRY_BITS
    assert fast.total_bits == slow.total_bits
    assert fast._outliers is None  # counts/footprint did not materialize
    assert fast.outliers == slow.outliers  # first access materializes
    assert fast._outliers is not None


def test_pack_activations_extremes_and_padding():
    cases = [
        (np.zeros((16, 3, 3), dtype=np.int64), 15),  # exact chunk multiple, all zero
        (np.full((5, 2, 2), 100, dtype=np.int64), 15),  # every element an outlier
        (np.arange(32 * 4).reshape(32, 2, 2).astype(np.int64) % 16, 15),  # no outliers
        (np.arange(17 * 9).reshape(17, 3, 3).astype(np.int64) % 40, 15),  # padded channels
        (np.arange(3 * 4).reshape(3, 2, 2).astype(np.int64), 7),  # custom normal_max
    ]
    for levels, normal_max in cases:
        fast = pack_activations(levels, normal_max=normal_max)
        slow = pack_activations(levels, normal_max=normal_max, slow_reference=True)
        assert np.array_equal(fast.dense, slow.dense)
        assert fast.outliers == slow.outliers
        assert fast == slow
        assert np.array_equal(unpack_activations(fast), levels)


def test_activation_fault_strikes_identical_across_packing_paths():
    # FaultPlan's rng is stateless per (seed, surface): the fast packer's
    # coordinate table and the scalar packer's FIFO carry the same values
    # in the same order, so the swarm-value strikes degrade identically.
    from dataclasses import replace as dc_replace

    rng = np.random.default_rng(515)
    levels = rng.integers(0, 16, size=(24, 5, 5))
    mask = rng.random(size=levels.shape) < 0.2
    levels = np.where(mask, rng.integers(16, 300, size=levels.shape), levels).astype(np.int64)
    plan = FaultPlan(rate=2e-2, seed=17)

    results = []
    for slow in (False, True):
        packed = pack_activations(levels, slow_reference=slow)
        dense, _ = plan.corrupt_levels(packed.dense, 4, surface="activations")
        values = packed._coord_table()[:, 3]
        struck_values, _ = plan.corrupt_levels(values, 16, surface="outliers")
        entries = [
            dc_replace(e, value=int(v)) for e, v in zip(packed.outliers, struck_values)
        ]
        results.append(unpack_activations(packed.replace_streams(dense=dense, outliers=entries)))
    assert np.array_equal(results[0], results[1])
    assert not np.array_equal(results[0], levels)  # the strikes landed


# ---------------------------------------------------------------------------
# functional datapath
# ---------------------------------------------------------------------------


def test_olaccel_conv2d_fast_matches_slow():
    rng = np.random.default_rng(707)
    acts = rng.integers(0, 30, size=(1, 8, 7, 7)).astype(np.int64)
    weights = _random_levels(rng, 24, 8 * 9, 0.1).reshape(24, 8, 3, 3)
    fast = olaccel_conv2d(acts, weights, pad=1)
    slow = olaccel_conv2d(acts, weights, pad=1, slow_reference=True)
    assert np.array_equal(fast.psum, slow.psum)
    assert fast.cycles == slow.cycles
    assert np.array_equal(fast.pass_cycles, slow.pass_cycles)
    assert fast.outlier_broadcasts == slow.outlier_broadcasts


# ---------------------------------------------------------------------------
# fault-injection interplay
# ---------------------------------------------------------------------------


def test_faults_rate_zero_identity_both_paths():
    rng = np.random.default_rng(808)
    levels = _random_levels(rng, 32, 18, 0.05)
    plan = FaultPlan(rate=0.0, seed=9)
    for slow in (False, True):
        packed = pack_weights(levels, slow_reference=slow)
        rebuilt = corrupt_packed_weights(packed, plan)
        assert np.array_equal(rebuilt.unpack(), levels)
        assert np.array_equal(rebuilt.unpack(slow_reference=True), levels)


def test_faults_nonzero_rate_identical_across_packing_paths():
    # FaultPlan's rng is stateless per (seed, surface): identical word
    # lists get identical strikes, so the fast- and slow-packed tables
    # degrade identically.
    rng = np.random.default_rng(909)
    levels = _random_levels(rng, 48, 22, 0.05)
    plan = FaultPlan(rate=5e-3, seed=31)

    results = []
    for slow in (False, True):
        obs = Registry()
        packed = pack_weights(levels, slow_reference=slow)
        rebuilt = corrupt_packed_weights(packed, plan, policy="degrade", obs=obs)
        counters = obs.snapshot()
        results.append((rebuilt.unpack(), counters))
    (fast_levels, fast_counters), (slow_levels, slow_counters) = results
    assert np.array_equal(fast_levels, slow_levels)
    assert fast_counters == slow_counters


def test_faulty_conv_counters_reconcile_with_fast_paths():
    rng = np.random.default_rng(111)
    acts = rng.integers(0, 25, size=(1, 4, 6, 6)).astype(np.int64)
    weights = _random_levels(rng, 16, 4 * 9, 0.08).reshape(16, 4, 3, 3)
    outcome = faulty_olaccel_conv2d(acts, weights, pad=1, plan=FaultPlan(rate=2e-3, seed=5))
    assert outcome.injected == outcome.detected + outcome.undetected
    assert outcome.undetected >= 0


# ---------------------------------------------------------------------------
# event_sim: vectorized cluster run vs the scalar stepper
# ---------------------------------------------------------------------------


def _random_cluster_case(rng):
    from repro.olaccel.event_sim import passes_from_levels

    n_passes = int(rng.integers(0, 40))
    levels = rng.integers(0, 16, size=(n_passes, 16))
    levels[rng.random(levels.shape) < float(rng.uniform(0.2, 0.8))] = 0
    spills = rng.random(levels.shape) < float(rng.uniform(0.0, 0.5))
    return (
        passes_from_levels(levels, spills),
        int(rng.integers(0, 30)),
        int(rng.integers(1, 13)),
        int(rng.integers(1, 5)),
    )


def test_cluster_sim_fast_matches_scalar_randomized():
    import dataclasses

    from repro.olaccel.event_sim import ClusterSim

    rng = np.random.default_rng(4242)
    for _ in range(60):
        passes, outliers, n_groups, bw = _random_cluster_case(rng)
        fast_sim = ClusterSim(n_groups=n_groups, accumulation_bandwidth=bw)
        slow_sim = ClusterSim(n_groups=n_groups, accumulation_bandwidth=bw)
        fast = fast_sim.run(passes, outlier_broadcasts=outliers)
        slow = slow_sim.run(passes, outlier_broadcasts=outliers, slow_reference=True)
        assert dataclasses.asdict(fast) == dataclasses.asdict(slow)
        # per-group counters must agree too: ClusterSim instances are
        # reusable and accumulate across run() calls
        for f_group, s_group in zip(fast_sim.groups, slow_sim.groups):
            assert f_group.busy_cycles == s_group.busy_cycles
            assert f_group.run_cycles == s_group.run_cycles
            assert f_group.skip_cycles == s_group.skip_cycles
            assert f_group.bcast_cycles == s_group.bcast_cycles
            assert f_group.stall_cycles == s_group.stall_cycles
            assert f_group.completed_passes == s_group.completed_passes


def test_cluster_sim_fast_matches_scalar_edge_cases():
    import dataclasses

    from repro.olaccel.event_sim import ClusterSim, passes_from_levels

    empty = passes_from_levels(np.zeros((0, 16), dtype=np.int64))
    all_zero = passes_from_levels(np.zeros((5, 16), dtype=np.int64))
    for passes, outliers in [(empty, 0), (empty, 7), (all_zero, 0), (all_zero, 3)]:
        fast = ClusterSim(n_groups=3).run(passes, outlier_broadcasts=outliers)
        slow = ClusterSim(n_groups=3).run(
            passes, outlier_broadcasts=outliers, slow_reference=True
        )
        assert dataclasses.asdict(fast) == dataclasses.asdict(slow)


def test_cluster_sim_repeated_runs_accumulate_identically():
    import dataclasses

    from repro.olaccel.event_sim import ClusterSim

    rng = np.random.default_rng(77)
    fast_sim = ClusterSim(n_groups=4)
    slow_sim = ClusterSim(n_groups=4)
    for _ in range(3):
        passes, outliers, _, _ = _random_cluster_case(rng)
        fast = fast_sim.run(passes, outlier_broadcasts=outliers)
        slow = slow_sim.run(passes, outlier_broadcasts=outliers, slow_reference=True)
        assert dataclasses.asdict(fast) == dataclasses.asdict(slow)


def test_cluster_sim_max_cycles_boundary_matches():
    from repro.olaccel.event_sim import ClusterSim, passes_from_levels

    passes = passes_from_levels(np.ones((1, 16), dtype=np.int64))
    need = ClusterSim(n_groups=1).run(passes, slow_reference=True).cycles
    for max_cycles in (need, need + 1):
        outcomes = []
        for slow in (False, True):
            try:
                ClusterSim(n_groups=1).run(passes, max_cycles=max_cycles, slow_reference=slow)
                outcomes.append("converged")
            except RuntimeError:
                outcomes.append("raised")
        assert outcomes[0] == outcomes[1], (max_cycles, outcomes)


def test_cluster_sim_obs_forces_scalar_stepper():
    # per-cycle histograms only exist on the stepper; attaching a
    # registry must produce them (the fast path cannot)
    from repro.olaccel.event_sim import ClusterSim, passes_from_levels

    rng = np.random.default_rng(9)
    levels = rng.integers(0, 4, size=(6, 16))
    passes = passes_from_levels(levels)
    obs = Registry()
    ClusterSim(n_groups=2, obs=obs).run(passes)
    assert obs.histogram("queue_depth").count > 0


def test_cluster_sim_tracer_forces_scalar_stepper():
    # per-pass completion events only exist on the stepper; an attached
    # tracer must receive them even without slow_reference=True
    from repro.obs import Tracer
    from repro.olaccel.event_sim import ClusterSim, passes_from_levels

    rng = np.random.default_rng(10)
    levels = rng.integers(0, 4, size=(7, 16))
    passes = passes_from_levels(levels)
    tracer = Tracer()
    result = ClusterSim(n_groups=2, tracer=tracer).run(passes)
    assert len(tracer.of_kind("pass_done")) == result.passes == 7


def test_passes_from_levels_returns_lazy_pass_matrix():
    from repro.olaccel.event_sim import PassDescriptor, PassMatrix, passes_from_levels

    rng = np.random.default_rng(11)
    levels = rng.integers(0, 16, size=(9, 16))
    spills = rng.random(levels.shape) < 0.3
    passes = passes_from_levels(levels, spills)
    assert isinstance(passes, PassMatrix)
    assert len(passes) == 9
    for i in (0, 4, 8):
        desc = passes[i]
        assert isinstance(desc, PassDescriptor)
        assert desc.activations == tuple(int(v) for v in levels[i])
        assert desc.spill == tuple(bool(s) for s in spills[i])
    assert passes[2:4] == [passes[2], passes[3]]
    assert list(passes) == [passes[i] for i in range(9)]


def test_cluster_sim_fast_accepts_plain_descriptor_lists():
    # manually built descriptor lists (tests, notebooks) must keep
    # working on the fast path, not just PassMatrix batches
    import dataclasses

    from repro.olaccel.event_sim import ClusterSim, PassDescriptor

    rng = np.random.default_rng(12)
    levels = rng.integers(0, 16, size=(11, 16))
    spills = rng.random(levels.shape) < 0.25
    passes = [
        PassDescriptor(tuple(int(v) for v in row), tuple(bool(s) for s in srow))
        for row, srow in zip(levels, spills)
    ]
    fast = ClusterSim(n_groups=3).run(passes, outlier_broadcasts=4)
    slow = ClusterSim(n_groups=3).run(passes, outlier_broadcasts=4, slow_reference=True)
    assert dataclasses.asdict(fast) == dataclasses.asdict(slow)


def test_batch_pass_cycles_fast_matches_slow():
    from repro.olaccel.pe_group import batch_pass_cycles

    rng = np.random.default_rng(13)
    for _ in range(25):
        n = int(rng.integers(0, 50))
        levels = rng.integers(0, 16, size=(n, 16))
        levels[rng.random(levels.shape) < float(rng.uniform(0.1, 0.9))] = 0
        spills = rng.random(levels.shape) < float(rng.uniform(0.0, 0.5))
        fast = batch_pass_cycles(levels, spills)
        slow = batch_pass_cycles(levels, spills, slow_reference=True)
        assert np.array_equal(fast, slow)
        assert fast.dtype == slow.dtype == np.int64
    # spill_flags defaults to no spills on both paths
    levels = rng.integers(0, 16, size=(8, 16))
    assert np.array_equal(
        batch_pass_cycles(levels), batch_pass_cycles(levels, slow_reference=True)
    )
    with pytest.raises(ValueError):
        batch_pass_cycles(levels, np.zeros((8, 4), dtype=bool))


def test_pass_op_counts_sum_is_micro_schedule_length():
    from repro.olaccel.event_sim import PassDescriptor, _micro_schedule
    from repro.olaccel.pe_group import pass_op_counts

    rng = np.random.default_rng(14)
    levels = rng.integers(0, 16, size=(12, 16))
    levels[rng.random(levels.shape) < 0.5] = 0
    spills = rng.random(levels.shape) < 0.3
    bcast, stall, skip = pass_op_counts(levels, spills)
    for i in range(12):
        ops = _micro_schedule(
            PassDescriptor(tuple(int(v) for v in levels[i]), tuple(bool(s) for s in spills[i]))
        )
        assert bcast[i] == ops.count("bcast")
        assert stall[i] == ops.count("stall")
        assert skip[i] == ops.count("skip")
        assert bcast[i] + stall[i] + skip[i] == len(ops)


# ---------------------------------------------------------------------------
# col2im: indexed scatter vs blocked slice-adds
# ---------------------------------------------------------------------------


def test_col2im_fast_matches_slow_both_branches():
    from repro.nn import functional as F

    rng = np.random.default_rng(515)
    cases = [
        # (n, c, h, w, k, stride, pad): small slices -> scatter branch
        (1, 2, 6, 6, 5, 1, 2),
        (1, 1, 8, 8, 5, 2, 2),
        (2, 2, 5, 5, 3, 1, 1),
        (1, 1, 12, 12, 7, 1, 3),
        (1, 1, 5, 7, 2, 1, 0),
        # large slices -> slice-add branch
        (4, 16, 14, 14, 3, 1, 1),
        (2, 8, 16, 16, 5, 3, 2),
    ]
    for n, c, h, w, k, s, p in cases:
        out_h = F.conv_out_size(h, k, s, p)
        out_w = F.conv_out_size(w, k, s, p)
        for dtype in (np.float64, np.float32):
            cols = rng.standard_normal((n * out_h * out_w, c * k * k)).astype(dtype)
            fast = F.col2im(cols, (n, c, h, w), k, k, s, p)
            slow = F.col2im(cols, (n, c, h, w), k, k, s, p, slow_reference=True)
            assert fast.dtype == slow.dtype
            assert np.array_equal(fast, slow), (n, c, h, w, k, s, p, dtype)


def test_col2im_is_adjoint_of_im2col_unpadded():
    from repro.nn import functional as F

    rng = np.random.default_rng(77)
    x = rng.standard_normal((2, 3, 8, 8))
    cols = F.im2col(x, 2, 2, 2, 0)  # non-overlapping windows
    assert np.array_equal(F.col2im(cols, x.shape, 2, 2, 2, 0), x)


def test_conv2d_backward_gradients_unchanged_by_fast_path():
    from repro.nn import functional as F

    rng = np.random.default_rng(31)
    x = rng.standard_normal((1, 2, 6, 6))
    w = rng.standard_normal((4, 2, 3, 3))
    y, cache = F.conv2d(x, w, stride=1, pad=1)
    dy = rng.standard_normal(y.shape)
    dx, dw, db = F.conv2d_backward(dy, cache)
    # reference dx through the slow col2im on the same dcols
    x_shape, cols, weight, stride, pad = cache
    dy_mat = dy.transpose(0, 2, 3, 1).reshape(-1, 4)
    dcols = dy_mat @ weight.reshape(4, -1)
    dx_ref = F.col2im(dcols, x_shape, 3, 3, stride, pad, slow_reference=True)
    assert np.array_equal(dx, dx_ref)


def test_coord_table_lru_bounded_and_evicts_oldest():
    from repro.nn import functional as F

    F._COORD_CACHE.clear()
    first_key = None
    for i in range(F._COORD_CACHE_MAX + 5):
        entry = F._coord_table(6 + i, 6 + i, 3, 3, 1, 1)
        assert entry[0] == F.conv_out_size(6 + i, 3, 1, 1)
        if i == 0:
            first_key = (6, 6, 3, 3, 1, 1)
    assert len(F._COORD_CACHE) == F._COORD_CACHE_MAX
    assert first_key not in F._COORD_CACHE  # oldest evicted
    # most recent geometries survive
    assert (6 + F._COORD_CACHE_MAX + 4,) * 2 + (3, 3, 1, 1) in F._COORD_CACHE


def test_coord_table_indices_built_lazily_and_reused():
    from repro.nn import functional as F

    F._COORD_CACHE.clear()
    entry = F._coord_table(6, 6, 3, 3, 1, 1)
    assert entry[2] is None  # geometry-only until the scatter needs it
    entry = F._coord_table(6, 6, 3, 3, 1, 1, need_indices=True)
    assert entry[2] is not None
    again = F._coord_table(6, 6, 3, 3, 1, 1, need_indices=True)
    assert again[2] is entry[2]  # same cached array, not rebuilt
