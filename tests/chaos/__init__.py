"""Chaos harness: real worker processes, seeded SIGKILL schedules.

The convergence property under test (docs/COORD.md): for any seeded
kill schedule, a shared run dir drained by several ``repro work``
workers — some of them SIGKILLed mid-cell, mid-heartbeat, or between
claim and record — followed by one ``repro resume`` converges to the
same canonical envelope bytes as an uninterrupted serial run.
"""
