"""Chaos convergence tests (docs/COORD.md, ISSUE acceptance property).

For every seeded kill schedule: (serial cold run) == (3 real worker
processes drained with SIGKILLs at protocol-critical instants, then
``repro resume``) == (warm re-run) — byte-identical canonical envelope
bytes, exactly-reconciling ``coord/*`` counters, and zero orphaned
lease files after the final drain.
"""

from __future__ import annotations

import os
import signal
import time
from pathlib import Path

import pytest

import tests.chaos.cells as cells  # registers the chaos runner/assembler
from tests.chaos.harness import KILL_HOOKS, drain, kill_schedule, spawn_workers
from repro.harness.resilience import (
    RetryPolicy,
    RunDir,
    canonical_envelope_bytes,
    execute_sweep,
    resume_run,
)
from repro.obs import Registry

SIGKILLED = -signal.SIGKILL
LEASE_TTL = 1.0
HEARTBEAT = 0.1


@pytest.fixture(autouse=True)
def _no_inherited_kill_hooks(monkeypatch):
    for hook in KILL_HOOKS:
        monkeypatch.delenv(hook, raising=False)


def _retry():
    return RetryPolicy(max_attempts=3, backoff_base_s=0.01, backoff_factor=1.0)


def _serial_reference(tmp_path, plan):
    _, envelope, _, _ = execute_sweep(plan, tmp_path / "ref", retry=_retry())
    return canonical_envelope_bytes(envelope)


def _resume(run_dir, obs=None):
    return resume_run(
        run_dir,
        retry=_retry(),
        obs=obs,
        lease_ttl=LEASE_TTL,
        heartbeat_s=HEARTBEAT,
    )


def _assert_reconciled(obs: Registry):
    snap = obs.snapshot()
    assert snap.get("coord/claimed", 0) == (
        snap.get("coord/completed", 0)
        + snap.get("coord/expired", 0)
        + snap.get("coord/released", 0)
    ), snap


def _assert_no_leases(run_dir):
    leases = Path(run_dir) / "leases"
    assert not leases.exists() or not list(leases.iterdir())


def _wait_for_lease(run_dir, timeout=30.0):
    leases = Path(run_dir) / "leases"
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        found = sorted(leases.glob("*.lease.json")) if leases.exists() else []
        if found:
            return found
        time.sleep(0.02)
    raise AssertionError("no worker claimed a lease in time")


class TestSeededSchedules:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_chaotic_drain_converges_to_serial_bytes(self, tmp_path, seed):
        plan = cells.chaos_plan(n_cells=8, seed=seed)
        reference = _serial_reference(tmp_path, plan)

        run = tmp_path / "run"
        RunDir(run).init(plan)
        schedule = kill_schedule(seed, workers=3, min_kills=2)
        assert sum(1 for extra in schedule if extra) >= 2
        codes = drain(spawn_workers(run, schedule, LEASE_TTL, HEARTBEAT))
        # every armed worker that processed anything died by SIGKILL;
        # unarmed workers either finished (0) or hold no guarantee here
        assert all(code in (0, SIGKILLED) for code in codes), codes

        obs = Registry()
        _, envelope, _, _ = _resume(run, obs=obs)
        assert canonical_envelope_bytes(envelope) == reference
        _assert_reconciled(obs)
        _assert_no_leases(run)

        # warm re-run: nothing left to execute, identical bytes again
        warm_obs = Registry()
        _, warm, _, _ = _resume(run, obs=warm_obs)
        assert canonical_envelope_bytes(warm) == reference
        assert warm_obs.snapshot().get("coord/claimed", 0) == 0
        _assert_no_leases(run)


class TestTargetedKills:
    def test_kill_between_claim_and_record_is_stolen_and_recovered(self, tmp_path):
        plan = cells.chaos_plan(n_cells=4, seed=11)
        reference = _serial_reference(tmp_path, plan)
        run = tmp_path / "run"
        RunDir(run).init(plan)

        [code] = drain(
            spawn_workers(run, [{"REPRO_KILL_AFTER_CLAIMS": "1"}], LEASE_TTL, HEARTBEAT)
        )
        assert code == SIGKILLED
        # the dead worker's lease is orphaned: a claim with no record
        orphaned = list((run / "leases").glob("*.lease.json"))
        assert orphaned
        assert not list((run / "cells").glob("*.json"))

        obs = Registry()
        _, envelope, _, _ = _resume(run, obs=obs)
        assert canonical_envelope_bytes(envelope) == reference
        assert obs.snapshot()["coord/steals"] >= 1  # dead-owner fast path
        _assert_reconciled(obs)
        _assert_no_leases(run)

    def test_kill_during_heartbeat_is_stolen_and_recovered(self, tmp_path):
        plan = cells.chaos_plan(n_cells=4, seed=12)
        reference = _serial_reference(tmp_path, plan)
        run = tmp_path / "run"
        RunDir(run).init(plan)

        [code] = drain(
            spawn_workers(run, [{"REPRO_KILL_AFTER_HEARTBEATS": "1"}], LEASE_TTL, HEARTBEAT)
        )
        assert code == SIGKILLED
        stale = list((run / "leases").glob("*.lease.json"))
        assert stale  # mid-cell lease, freshly renewed, owner dead

        obs = Registry()
        _, envelope, _, _ = _resume(run, obs=obs)
        assert canonical_envelope_bytes(envelope) == reference
        assert obs.snapshot()["coord/steals"] >= 1
        _assert_reconciled(obs)
        _assert_no_leases(run)

    def test_stalled_live_worker_is_stolen_from_via_observation(self, tmp_path):
        """SIGSTOP exercises the TTL observation path: the owner's
        process is alive, so only elapsed silence on the observer's own
        clock can expire the lease."""
        plan = cells.chaos_plan(n_cells=4, seed=13)
        reference = _serial_reference(tmp_path, plan)
        run = tmp_path / "run"
        RunDir(run).init(plan)

        [proc] = spawn_workers(run, [{}], LEASE_TTL, HEARTBEAT)
        try:
            _wait_for_lease(run)
            os.kill(proc.pid, signal.SIGSTOP)

            obs = Registry()
            _, envelope, _, _ = _resume(run, obs=obs)
            assert canonical_envelope_bytes(envelope) == reference
            snap = obs.snapshot()
            assert snap["coord/steals"] >= 1
            assert snap["coord/stale_detected"] >= 1
            _assert_reconciled(obs)
            _assert_no_leases(run)
        finally:
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
