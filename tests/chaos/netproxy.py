"""Seeded network-fault-injection TCP proxy for the remote chaos tests.

Sits between ``repro work --connect`` workers and a ``repro serve``
server and mangles whole connections, one seeded draw per connection
(the protocol is Connection: close, one request per connection, so a
connection *is* a request):

- ``none`` — forward faithfully;
- ``delay`` — forward after a bounded pause;
- ``drop_request`` — swallow the request, close the client socket (the
  server never sees it);
- ``truncate_response`` — forward, then cut the answer mid-body (the
  client's Content-Length check turns this into a retry);
- ``duplicate_response`` — forward, then send the answer twice (the
  client's Content-Length framing discards the trailing copy);
- ``eat_response`` — forward, let the server act, discard the answer
  (the client must retry an operation that already happened: the
  at-least-once / idempotency path);
- ``reset`` — RST the client connection outright (SO_LINGER 0).

Runnable standalone for the CI smoke::

    python tests/chaos/netproxy.py HOST:PORT --seed 7 [--port 0]

prints ``proxy listening on PORT`` and serves until killed.
"""

from __future__ import annotations

import argparse
import random
import re
import socket
import struct
import sys
import threading
import time
from typing import Dict, Optional, Tuple

#: (fault, weight) — ``none`` dominates so progress is always possible,
#: but nearly half of all connections suffer *something*.
FAULT_WEIGHTS = (
    ("none", 0.55),
    ("delay", 0.10),
    ("drop_request", 0.08),
    ("truncate_response", 0.07),
    ("duplicate_response", 0.07),
    ("eat_response", 0.08),
    ("reset", 0.05),
)

_CONTENT_LENGTH = re.compile(rb"content-length:\s*(\d+)", re.IGNORECASE)


class FaultyProxy:
    """A threaded TCP proxy that injects one seeded fault per connection."""

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        seed: int = 0,
        host: str = "127.0.0.1",
        port: int = 0,
        max_delay_s: float = 0.3,
        io_timeout_s: float = 30.0,
    ):
        self.upstream = (upstream_host, upstream_port)
        self.rng = random.Random(seed)
        self.max_delay_s = max_delay_s
        self.io_timeout_s = io_timeout_s
        self.counts: Dict[str, int] = {name: 0 for name, _ in FAULT_WEIGHTS}
        self._lock = threading.Lock()
        self._closing = threading.Event()
        self.listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.listener.bind((host, port))
        self.listener.listen(64)
        self.host, self.port = self.listener.getsockname()[:2]
        self._accept_thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "FaultyProxy":
        self._accept_thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._accept_thread.start()
        return self

    def close(self) -> None:
        self._closing.set()
        try:
            self.listener.close()
        except OSError:
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)

    def __enter__(self) -> "FaultyProxy":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the faults ----------------------------------------------------------

    def _draw(self) -> str:
        with self._lock:
            fault = self.rng.choices(
                [name for name, _ in FAULT_WEIGHTS],
                weights=[w for _, w in FAULT_WEIGHTS],
            )[0]
            self.counts[fault] += 1
            delay = self.rng.uniform(0.02, self.max_delay_s)
        self._last_delay = delay
        return fault

    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                conn, _ = self.listener.accept()
            except OSError:
                return
            threading.Thread(target=self._handle, args=(conn,), daemon=True).start()

    def _handle(self, conn: socket.socket) -> None:
        fault = self._draw()
        try:
            with conn:
                request = self._read_request(conn)
                if request is None:
                    return
                if fault == "drop_request":
                    return  # the server never hears about it
                if fault == "reset":
                    conn.setsockopt(
                        socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
                    )
                    return
                if fault == "delay":
                    time.sleep(self._last_delay)
                response = self._forward(request)
                if response is None or fault == "eat_response":
                    return  # the server acted; the client never learns
                if fault == "truncate_response":
                    conn.sendall(response[: max(1, len(response) // 2)])
                    return
                conn.sendall(response)
                if fault == "duplicate_response":
                    conn.sendall(response)
        except OSError:
            pass

    # -- plumbing ------------------------------------------------------------

    def _read_request(self, conn: socket.socket) -> Optional[bytes]:
        """One whole HTTP request, framed by its Content-Length."""
        conn.settimeout(self.io_timeout_s)
        data = b""
        while b"\r\n\r\n" not in data:
            chunk = conn.recv(65536)
            if not chunk:
                return None
            data += chunk
        head, _, body = data.partition(b"\r\n\r\n")
        match = _CONTENT_LENGTH.search(head)
        length = int(match.group(1)) if match else 0
        while len(body) < length:
            chunk = conn.recv(65536)
            if not chunk:
                return None
            body += chunk
        return head + b"\r\n\r\n" + body

    def _forward(self, request: bytes) -> Optional[bytes]:
        """Send upstream, read the Connection: close answer to EOF."""
        try:
            with socket.create_connection(self.upstream, timeout=self.io_timeout_s) as up:
                up.sendall(request)
                response = b""
                while True:
                    chunk = up.recv(65536)
                    if not chunk:
                        return response
                    response += chunk
        except OSError:
            return None


def _parse_hostport(text: str) -> Tuple[str, int]:
    host, _, port = text.rpartition(":")
    return host or "127.0.0.1", int(port)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("upstream", metavar="HOST:PORT", type=_parse_hostport)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    args = parser.parse_args(argv)
    proxy = FaultyProxy(
        args.upstream[0], args.upstream[1], seed=args.seed, host=args.host, port=args.port
    )
    proxy.start()
    print(f"proxy listening on {proxy.port}", flush=True)
    try:
        while True:
            time.sleep(1)
    except KeyboardInterrupt:
        pass
    finally:
        proxy.close()
        print(f"proxy fault counts: {proxy.counts}", file=sys.stderr, flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
