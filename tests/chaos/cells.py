"""Deterministic synthetic cells for the chaos harness.

Each cell sleeps long enough for heartbeats (and kill hooks keyed on
them) to fire, then returns a digest of its own parameters — a value
that is trivially deterministic, so any divergence between a chaotic
drain and a serial run is a coordination bug, not a simulation one.

Imported for its side effects (runner + assembler registration) by the
test module and by every spawned worker process.
"""

from __future__ import annotations

import hashlib
import json
import random
import time

from repro.harness.resilience import (
    PLAN_ASSEMBLERS,
    CellSpec,
    SweepPlan,
    register_cell_runner,
)


def chaos_cell(params):
    time.sleep(params.get("sleep_s", 0.05))
    blob = json.dumps(params, sort_keys=True).encode()
    return {"digest": hashlib.sha256(blob).hexdigest(), "x": params["x"]}


register_cell_runner("chaos", chaos_cell)


def _assemble(plan, records):
    """Deterministic assembly in plan order, independent of which
    worker finished which cell."""
    rows = {}
    failed = []
    for spec in plan.cells:
        record = records.get(spec.cell_id)
        if record is not None and record.get("status") == "ok":
            rows[spec.cell_id] = record["result"]
        else:
            failed.append(spec.cell_id)
    return {"rows": rows, "failed": failed}


PLAN_ASSEMBLERS["chaos"] = _assemble


def chaos_plan(n_cells: int = 8, seed: int = 0) -> SweepPlan:
    """A seeded plan whose cell sleeps exceed the chaos heartbeat
    interval, so kill-during-heartbeat hooks always get a chance."""
    rng = random.Random(seed)
    cells = [
        CellSpec(
            f"c{i:02d}",
            "chaos",
            {"x": i, "sleep_s": round(rng.uniform(0.15, 0.3), 3)},
        )
        for i in range(n_cells)
    ]
    return SweepPlan(
        plan="chaos",
        experiment="chaos",
        description="chaos convergence cells",
        seed=seed,
        params={"n_cells": n_cells},
        cells=cells,
    )
