"""Seeded kill schedules and worker-process control for the chaos tests."""

from __future__ import annotations

import os
import random
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Optional

REPO = Path(__file__).resolve().parents[2]
WORKER_MAIN = REPO / "tests" / "chaos" / "worker_main.py"

#: The three protocol-critical kill instants (docs/COORD.md):
#: right after a claim (lease exists, no work started), right after a
#: heartbeat renewal (mid-cell, lease looks fresh), and right after a
#: durable cell record (the pre-existing checkpoint hook).
KILL_HOOKS = (
    "REPRO_KILL_AFTER_CLAIMS",
    "REPRO_KILL_AFTER_HEARTBEATS",
    "REPRO_KILL_AFTER_CELLS",
)


def worker_env(extra: Optional[Dict[str, str]] = None) -> Dict[str, str]:
    """A clean worker environment: no inherited kill hooks, repo and
    src importable."""
    env = {k: v for k, v in os.environ.items() if k not in KILL_HOOKS}
    env["PYTHONPATH"] = f"{REPO}{os.pathsep}{REPO / 'src'}"
    if extra:
        env.update(extra)
    return env


def kill_schedule(seed: int, workers: int = 3, min_kills: int = 2) -> List[Dict[str, str]]:
    """One seeded schedule: per-worker env overrides, ≥ ``min_kills``
    of them armed with a kill hook that fires on its first event."""
    rng = random.Random(seed)
    schedule: List[Dict[str, str]] = [{} for _ in range(workers)]
    n_victims = rng.randint(min(min_kills, workers), workers)
    for victim in rng.sample(range(workers), n_victims):
        schedule[victim] = {rng.choice(KILL_HOOKS): "1"}
    return schedule


def spawn_workers(
    run_dir,
    schedule: List[Dict[str, str]],
    lease_ttl: float = 1.0,
    heartbeat_s: float = 0.1,
) -> List[subprocess.Popen]:
    return [
        subprocess.Popen(
            [
                sys.executable,
                str(WORKER_MAIN),
                str(run_dir),
                "--lease-ttl",
                str(lease_ttl),
                "--heartbeat",
                str(heartbeat_s),
            ],
            env=worker_env(extra),
            cwd=str(REPO),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        for extra in schedule
    ]


def drain(procs: List[subprocess.Popen], timeout: float = 120.0) -> List[int]:
    """Wait every worker out (hard-killing any that hang past
    ``timeout``); returns their exit codes."""
    codes = []
    for proc in procs:
        try:
            proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
        codes.append(proc.returncode)
    return codes
