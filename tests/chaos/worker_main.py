"""Subprocess entry point: one chaos worker draining a shared run dir.

Runs the exact ``repro work`` code path (``work_run``) after
registering the synthetic chaos cells. Kill hooks arrive via the
environment (``REPRO_KILL_AFTER_CLAIMS`` / ``_HEARTBEATS`` /
``_CELLS``), so a scheduled victim SIGKILLs itself at a protocol-
critical instant and the survivors carry on.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
for entry in (str(REPO), str(REPO / "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

import tests.chaos.cells  # noqa: E402,F401 - registers the chaos runner
from repro.harness.resilience import RetryPolicy, work_run  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("run_dir")
    parser.add_argument("--lease-ttl", type=float, default=1.0)
    parser.add_argument("--heartbeat", type=float, default=0.1)
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args(argv)
    work_run(
        args.run_dir,
        jobs=args.jobs,
        retry=RetryPolicy(max_attempts=3, backoff_base_s=0.01, backoff_factor=1.0),
        lease_ttl=args.lease_ttl,
        heartbeat_s=args.heartbeat,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
