"""Remote-protocol chaos: real workers, real sockets, injected faults.

The tentpole acceptance battery from docs/REMOTE.md: a live ``--workers
0`` coordinator is drained *solely* by real ``repro work --connect``
subprocesses, every byte of whose traffic crosses the seeded
:class:`tests.chaos.netproxy.FaultyProxy` (drops, delays, duplicated /
truncated / eaten responses, RSTs), while a seeded schedule SIGKILLs
workers at protocol-critical instants. Afterwards the served envelope
must be byte-identical to a cold serial run, the run directory must
hold zero lease files, and the ``remote/*`` books must reconcile
exactly (claims == completed + expired + abandoned).

Kill hooks: remote schedules draw from the claim-ack and upload-ack
hooks only — the heartbeat hook needs cells that outlive the heartbeat
interval, and real ``faults`` cells finish in milliseconds; the
heartbeat kill instant is covered by tests/chaos/test_chaos.py (shared
filesystem) and the zombie-fencing units in tests/test_remote.py.
"""

from __future__ import annotations

import json
import random
import signal
import subprocess
import sys
import time
from typing import Dict, List

import pytest

from repro.harness.resilience import (
    RunDir,
    canonical_envelope_bytes,
    execute_sweep,
    faults_plan,
)
from repro.harness.serve import JOB_SCHEMA, ServeConfig, TERMINAL_STATES
from tests.chaos.harness import KILL_HOOKS, REPO, drain, worker_env
from tests.chaos.netproxy import FaultyProxy
from tests.test_serve_protocol import _LiveServer

SIGKILLED = -signal.SIGKILL
LEASE_TTL = 1.0
HEARTBEAT = 0.1

#: Deterministic remote kill instants: right after a claim is acked
#: (the server holds a live lease for a dead worker) and right after a
#: result upload is acked (the record is durable, the settle raced).
REMOTE_KILL_HOOKS = ("REPRO_KILL_AFTER_CLAIMS", "REPRO_KILL_AFTER_CELLS")

CHAOS_JOB = {
    "schema": JOB_SCHEMA,
    "verb": "faults",
    "network": "alexnet",
    "params": {"rates": [0.0, 1e-4, 1e-3], "widths": [24, 20, 16]},
    "seed": 11,
}


@pytest.fixture(autouse=True)
def _no_inherited_kill_hooks(monkeypatch):
    for hook in KILL_HOOKS:
        monkeypatch.delenv(hook, raising=False)


def _serial_reference(tmp_path):
    plan = faults_plan(
        "alexnet",
        rates=(0.0, 1e-4, 1e-3),
        widths=(24, 20, 16),
        policy="degrade",
        model="bitflip",
        ratio=0.03,
        seed=11,
    )
    ref = tmp_path / "reference"
    RunDir(ref).init(plan)
    _, envelope, _, _ = execute_sweep(plan, ref)
    return canonical_envelope_bytes(envelope)


def remote_kill_schedule(seed: int, workers: int = 3, min_kills: int = 2) -> List[Dict[str, str]]:
    """Seeded per-worker env overrides, ≥ ``min_kills`` armed."""
    rng = random.Random(seed)
    schedule: List[Dict[str, str]] = [{} for _ in range(workers)]
    n_victims = rng.randint(min(min_kills, workers), workers)
    for victim in rng.sample(range(workers), n_victims):
        schedule[victim] = {rng.choice(REMOTE_KILL_HOOKS): "1"}
    return schedule


def spawn_remote_workers(
    url: str,
    schedule: List[Dict[str, str]],
    request_timeout: float = 5.0,
    linger_s: float = 0.0,
) -> List[subprocess.Popen]:
    """Real ``repro work --connect`` subprocesses, one per schedule entry."""
    return [
        subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "work",
                "--connect",
                url,
                "--request-timeout",
                str(request_timeout),
                "--linger",
                str(linger_s),
            ],
            env=worker_env(extra),
            cwd=str(REPO),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        for extra in schedule
    ]


def _assert_remote_books_reconcile(stats: dict):
    remote = stats["remote"]
    assert remote["active"] == 0, remote
    assert remote["claims"] == (
        remote["completed"] + remote["expired"] + remote["abandoned"]
    ), remote


class TestRemoteChaos:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_faulty_network_drain_converges_to_serial_bytes(self, tmp_path, seed):
        reference = _serial_reference(tmp_path)

        config = ServeConfig(
            spool=tmp_path / "spool",
            workers=0,  # pure coordinator: only remote workers may drain
            lease_ttl=LEASE_TTL,
            heartbeat_s=HEARTBEAT,
        )
        with _LiveServer(config) as live:
            with FaultyProxy("127.0.0.1", live.server.port, seed=seed) as proxy:
                status, doc = live.request("POST", "/jobs", CHAOS_JOB)
                assert status == 202
                job_id = doc["job_id"]

                url = f"http://127.0.0.1:{proxy.port}"
                schedule = remote_kill_schedule(seed, workers=3, min_kills=2)
                assert sum(1 for extra in schedule if extra) >= 2
                codes = drain(spawn_remote_workers(url, schedule))
                # armed workers die by SIGKILL once their hook fires;
                # a worker the schedule starved may instead idle out
                assert all(code in (0, SIGKILLED) for code in codes), codes

                # a clean second wave reconnects through the same faulty
                # proxy and finishes whatever the kills orphaned (leases
                # are reclaimed by the server's TTL reaper)
                if live.request("GET", f"/jobs/{job_id}")[1]["state"] not in TERMINAL_STATES:
                    codes = drain(spawn_remote_workers(url, [{}, {}], linger_s=1.0))
                    assert codes == [0, 0], codes

                final = live.wait_state(job_id)
                assert final["state"] == "DONE", final

                # byte-identical to the cold serial run
                status, envelope = live.request("GET", f"/jobs/{job_id}/result")
                assert status == 200
                assert canonical_envelope_bytes(envelope) == reference

                # zero orphaned leases on disk
                leases = live.server.store.run_dir(job_id) / "leases"
                assert not leases.exists() or not list(leases.iterdir())

                # the books reconcile exactly
                status, stats = live.request("GET", "/stats")
                assert status == 200
                _assert_remote_books_reconcile(stats)
                assert stats["jobs"]["reconciles"] is True, stats["jobs"]

                # the proxy really saw the traffic (and, with these
                # weights, almost surely mangled some of it)
                assert sum(proxy.counts.values()) >= 9, proxy.counts

    def test_eaten_upload_is_retried_and_lands_once(self, tmp_path):
        """A proxy that eats every first response forces the
        at-least-once path: the worker retries operations the server
        already performed, and idempotency keeps the books exact."""
        config = ServeConfig(
            spool=tmp_path / "spool",
            workers=0,
            lease_ttl=30.0,  # no reaping: only idempotency may save us
            heartbeat_s=HEARTBEAT,
        )
        with _LiveServer(config) as live:
            proxy = FaultyProxy("127.0.0.1", live.server.port, seed=5)
            # deterministic override: eat exactly the first response of
            # every even-numbered connection
            seen = {"n": 0}

            def eat_alternate():
                seen["n"] += 1
                fault = "eat_response" if seen["n"] % 2 == 0 else "none"
                proxy.counts[fault] += 1
                return fault

            proxy._draw = eat_alternate  # type: ignore[method-assign]
            with proxy:
                status, doc = live.request(
                    "POST",
                    "/jobs",
                    {
                        "schema": JOB_SCHEMA,
                        "verb": "faults",
                        "network": "alexnet",
                        "params": {"rates": [0.0], "widths": [24]},
                        "seed": 7,
                    },
                )
                assert status == 202
                job_id = doc["job_id"]
                codes = drain(
                    spawn_remote_workers(f"http://127.0.0.1:{proxy.port}", [{}], linger_s=1.0)
                )
                assert codes == [0], codes
                final = live.wait_state(job_id)
                assert final["state"] == "DONE", final
                assert final["progress"]["cells_ok"] == 2

                _, stats = live.request("GET", "/stats")
                _assert_remote_books_reconcile(stats)
                assert proxy.counts["eat_response"] >= 1, proxy.counts
