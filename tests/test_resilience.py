"""Tests for the resilient execution layer (docs/RESILIENCE.md).

Covers the atomic/checksummed artifact writers, the checkpointed run
directory, the supervised worker pool (timeouts, retries, crash
isolation, clean teardown), graceful degradation (FAILED cells), and
the headline guarantee: a sweep SIGKILLed at a cell boundary resumes to
a byte-identical envelope.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import EXPERIMENTS, main
from repro.errors import ArtifactIntegrityError, CellError
from repro.harness.parallel import _simulate_one, parallel_network_run
from repro.harness.resilience import (
    KILL_AFTER_ENV,
    PLAN_ASSEMBLERS,
    CellSpec,
    RetryPolicy,
    RunDir,
    SweepPlan,
    breakdown_plan,
    canonical_envelope_bytes,
    execute_sweep,
    faults_plan,
    register_cell_runner,
    resume_run,
    _run_breakdown_cell,
)
from repro.harness.report import FAILED, format_failures
from repro.harness.seeding import global_seed, set_global_seed
from repro.harness.serialize import (
    INTEGRITY_KEY,
    atomic_write_text,
    load_csv,
    load_json,
    save_csv,
    save_json,
)
from repro.obs import Registry

REPO = Path(__file__).resolve().parents[1]
CLI_ENV = {**os.environ, "PYTHONPATH": str(REPO / "src")}
CLI_ENV.pop(KILL_AFTER_ENV, None)


def _repro(*argv, env=None, timeout=120):
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        env=env or CLI_ENV,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


# ---------------------------------------------------------------------------
# Synthetic cells for the supervised-pool tests. Registered at import
# time so fork()ed workers inherit them.
# ---------------------------------------------------------------------------


def _cell_ok(params):
    return {"value": params["x"] * 2}


def _cell_boom(params):
    raise ValueError("synthetic failure")


def _cell_sleep(params):
    time.sleep(params.get("s", 60))
    return {"slept": True}


def _cell_exit(params):
    os._exit(3)  # die without reporting: the "crash" failure mode


def _cell_flaky(params):
    """Fails on the first attempt (marker file absent), succeeds after."""
    marker = Path(params["marker"])
    if not marker.exists():
        marker.write_text("attempt 1 failed here")
        raise RuntimeError("first attempt fails by design")
    return _run_breakdown_cell(params)


register_cell_runner("t_ok", _cell_ok)
register_cell_runner("t_boom", _cell_boom)
register_cell_runner("t_sleep", _cell_sleep)
register_cell_runner("t_exit", _cell_exit)
register_cell_runner("t_flaky", _cell_flaky)


def _rows_assembler(plan, records):
    return {
        "rows": {
            cid: rec["result"]
            for cid, rec in records.items()
            if rec.get("status") == "ok"
        },
        "failed": sorted(
            cid for cid, rec in records.items() if rec.get("status") != "ok"
        ),
    }


PLAN_ASSEMBLERS["testplan"] = _rows_assembler


def _test_plan(cells, seed=0):
    return SweepPlan(
        plan="testplan",
        experiment="testplan",
        description="synthetic cells",
        seed=seed,
        params={},
        cells=cells,
    )


def _fast_retry(**kw):
    defaults = dict(max_attempts=2, backoff_base_s=0.01, backoff_factor=1.0)
    defaults.update(kw)
    return RetryPolicy(**defaults)


class TestAtomicArtifacts:
    def test_atomic_write_leaves_no_temp(self, tmp_path):
        path = atomic_write_text("hello", tmp_path / "a.txt")
        assert path.read_text() == "hello"
        assert [p.name for p in tmp_path.iterdir()] == ["a.txt"]

    def test_save_json_embeds_digest_and_roundtrips(self, tmp_path):
        payload = {"a": 1, "b": [1.5, "x"]}
        path = save_json(payload, tmp_path / "doc.json")
        import json

        raw = json.loads(path.read_text())
        assert raw[INTEGRITY_KEY]["algo"] == "sha256"
        # load verifies and strips: caller sees exactly what was saved
        assert load_json(path) == payload

    def test_truncated_json_is_structured_error(self, tmp_path):
        path = save_json({"a": 1}, tmp_path / "doc.json")
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(ArtifactIntegrityError) as err:
            load_json(path)
        assert err.value.reason == "truncated"
        assert str(path) in str(err.value)

    def test_tampered_json_fails_digest(self, tmp_path):
        path = save_json({"a": 1}, tmp_path / "doc.json")
        path.write_text(path.read_text().replace('"a": 1', '"a": 2'))
        with pytest.raises(ArtifactIntegrityError) as err:
            load_json(path)
        assert err.value.reason == "digest_mismatch"
        # --no-verify escape hatch still parses (and still strips the key)
        assert load_json(path, verify=False) == {"a": 2}

    def test_missing_file_is_unreadable(self, tmp_path):
        with pytest.raises(ArtifactIntegrityError) as err:
            load_json(tmp_path / "nope.json")
        assert err.value.reason == "unreadable"

    def test_csv_sidecar_verifies(self, tmp_path):
        rows = [{"a": "1", "b": "2"}, {"a": "3", "b": "4"}]
        path = save_csv(rows, tmp_path / "t.csv")
        assert path.with_suffix(".csv.sha256").exists()
        assert load_csv(path) == rows
        path.write_text(path.read_text() + "9,9\n")
        with pytest.raises(ArtifactIntegrityError) as err:
            load_csv(path)
        assert err.value.reason == "digest_mismatch"
        assert load_csv(path, verify=False)[-1] == {"a": "9", "b": "9"}


class TestSupervisedPool:
    def test_retry_crash_isolation_and_reconciliation(self, tmp_path):
        plan = _test_plan(
            [
                CellSpec("ok", "t_ok", {"x": 21}),
                CellSpec("boom", "t_boom", {}),
                CellSpec("crash", "t_exit", {}),
            ]
        )
        obs = Registry()
        result, envelope, _, records = execute_sweep(
            plan, tmp_path / "run", jobs=2, retry=_fast_retry(), obs=obs
        )
        assert result["rows"] == {"ok": {"value": 42}}
        assert result["failed"] == ["boom", "crash"]
        assert records["boom"]["error"]["kind"] == "exception"
        assert "ValueError" in records["boom"]["error"]["message"]
        assert records["crash"]["error"]["kind"] == "crash"
        snap = obs.snapshot()
        assert snap["resilience/cells_total"] == 3
        assert snap["resilience/cells_attempted"] == 3
        # the reconciliation invariant: attempted == succeeded + failed
        assert (
            snap["resilience/cells_attempted"]
            == snap["resilience/cells_succeeded"] + snap["resilience/cells_failed"]
        )
        # 1 attempt for ok + 2 each for the two failures
        assert snap["resilience/attempts"] == 5
        assert snap["resilience/retries"] == 2
        assert envelope["resilience"]["cells_failed"] == 2
        assert [f["cell_id"] for f in envelope["resilience"]["failures"]] == ["boom", "crash"]

    def test_timeout_kills_worker_and_no_orphans(self, tmp_path):
        plan = _test_plan([CellSpec("slow", "t_sleep", {"s": 60})])
        obs = Registry()
        start = time.monotonic()
        _, envelope, _, records = execute_sweep(
            plan,
            tmp_path / "run",
            retry=_fast_retry(max_attempts=1, timeout_s=0.3),
            obs=obs,
        )
        assert time.monotonic() - start < 30  # nowhere near the 60 s sleep
        assert records["slow"]["error"]["kind"] == "timeout"
        assert obs.snapshot()["resilience/timeouts"] == 1
        assert envelope["resilience"]["cells_failed"] == 1
        # the timed-out worker was terminated AND joined — nothing alive
        assert not any(p.is_alive() for p in multiprocessing.active_children())

    def test_retried_cell_is_bit_identical(self, tmp_path):
        """A cell that fails once and succeeds on retry reproduces the
        exact result of a never-failed run (global --seed re-applied in
        the worker)."""
        params = {
            "accelerator": "olaccel16",
            "network": "alexnet",
            "ratio": 0.03,
            "seed": 11,
            "marker": str(tmp_path / "marker"),
        }
        plan = _test_plan([CellSpec("flaky", "t_flaky", params)], seed=11)
        obs = Registry()
        result, _, _, records = execute_sweep(
            plan, tmp_path / "run", retry=_fast_retry(max_attempts=3), obs=obs
        )
        assert records["flaky"]["attempts"] == 2
        assert obs.snapshot()["resilience/retries"] == 1
        set_global_seed(None)
        reference = _run_breakdown_cell(
            {k: v for k, v in params.items() if k != "marker"}
        )
        assert result["rows"]["flaky"] == reference


class TestRunDir:
    def test_completed_cells_are_skipped_on_rerun(self, tmp_path):
        plan = _test_plan([CellSpec("a", "t_ok", {"x": 1}), CellSpec("b", "t_ok", {"x": 2})])
        run_dir = tmp_path / "run"
        _, first, _, _ = execute_sweep(plan, run_dir)
        obs = Registry()
        _, second, _, _ = execute_sweep(plan, run_dir, obs=obs)
        snap = obs.snapshot()
        assert snap["resilience/cells_skipped"] == 2
        assert snap["resilience/cells_attempted"] == 0
        assert canonical_envelope_bytes(first) == canonical_envelope_bytes(second)

    def test_manifest_mismatch_refused(self, tmp_path):
        run_dir = tmp_path / "run"
        execute_sweep(_test_plan([CellSpec("a", "t_ok", {"x": 1})]), run_dir)
        other = _test_plan([CellSpec("a", "t_ok", {"x": 1})], seed=99)
        with pytest.raises(ArtifactIntegrityError) as err:
            execute_sweep(other, run_dir)
        assert err.value.reason == "manifest_mismatch"

    def test_corrupt_cell_record_reexecutes(self, tmp_path):
        plan = _test_plan([CellSpec("a", "t_ok", {"x": 1}), CellSpec("b", "t_ok", {"x": 2})])
        run_dir = tmp_path / "run"
        _, first, _, _ = execute_sweep(plan, run_dir)
        cell = RunDir(run_dir).cell_path("a")
        cell.write_text(cell.read_text()[:40])  # torn write
        obs = Registry()
        _, again, _, _ = resume_run(run_dir, obs=obs)
        assert obs.snapshot()["resilience/cells_attempted"] == 1
        assert canonical_envelope_bytes(first) == canonical_envelope_bytes(again)

    def test_failed_cells_reexecute_on_resume(self, tmp_path):
        marker = tmp_path / "marker"
        params = {
            "accelerator": "olaccel16",
            "network": "alexnet",
            "ratio": 0.03,
            "seed": 5,
            "marker": str(marker),
        }
        plan = _test_plan([CellSpec("flaky", "t_flaky", params)], seed=5)
        run_dir = tmp_path / "run"
        # no retries: first run records the cell as failed...
        _, first, _, _ = execute_sweep(plan, run_dir, retry=_fast_retry(max_attempts=1))
        assert first["resilience"]["cells_failed"] == 1
        # ...resume re-executes exactly the failed cell and succeeds
        _, second, _, records = resume_run(run_dir, retry=_fast_retry(max_attempts=1))
        assert second["resilience"]["cells_failed"] == 0
        assert records["flaky"]["status"] == "ok"


class TestKillResume:
    """SIGKILL at a cell boundary, then `repro resume` — the envelope
    must be byte-identical (modulo declared volatile fields) to an
    uninterrupted run."""

    @pytest.mark.parametrize("jobs", ["1", "2"])
    def test_fig11_kill_resume_byte_identical(self, tmp_path, jobs):
        run_dir = tmp_path / "run"
        env = dict(CLI_ENV, **{KILL_AFTER_ENV: "2"})
        killed = _repro(
            "run", "fig11", "--run-dir", str(run_dir), "--seed", "7", "--jobs", jobs,
            env=env,
        )
        assert killed.returncode == -signal.SIGKILL, killed.stderr
        done = list((run_dir / "cells").glob("*.json"))
        assert len(done) == 2  # checkpointed exactly up to the kill
        assert not run_dir.joinpath("envelope.json").exists()

        resumed = _repro("resume", str(run_dir), "--jobs", jobs)
        assert resumed.returncode == 0, resumed.stderr
        envelope = load_json(run_dir / "envelope.json")

        ref_dir = tmp_path / "ref"
        set_global_seed(7)
        plan = breakdown_plan(
            "alexnet", seed=7, experiment="fig11", description=EXPERIMENTS["fig11"][1]
        )
        _, reference, _, _ = execute_sweep(plan, ref_dir)
        set_global_seed(None)
        assert canonical_envelope_bytes(envelope) == canonical_envelope_bytes(reference)

    def test_faults_kill_resume_byte_identical(self, tmp_path):
        run_dir = tmp_path / "run"
        env = dict(CLI_ENV, **{KILL_AFTER_ENV: "1"})
        killed = _repro(
            "faults", "alexnet", "--rates", "0", "0.001", "--widths", "24",
            "--run-dir", str(run_dir), "--seed", "3",
            env=env,
        )
        assert killed.returncode == -signal.SIGKILL, killed.stderr
        assert len(list((run_dir / "cells").glob("*.json"))) == 1

        resumed = _repro("resume", str(run_dir))
        assert resumed.returncode == 0, resumed.stderr
        envelope = load_json(run_dir / "envelope.json")

        ref_dir = tmp_path / "ref"
        set_global_seed(3)
        plan = faults_plan("alexnet", rates=(0.0, 0.001), widths=(24,), seed=3)
        _, reference, _, _ = execute_sweep(plan, ref_dir)
        set_global_seed(None)
        assert canonical_envelope_bytes(envelope) == canonical_envelope_bytes(reference)

    def test_volatile_fields_really_differ(self, tmp_path):
        """Sanity: the byte-equality above is not vacuous — two separate
        runs do differ in the volatile fields before stripping."""
        plan = _test_plan([CellSpec("a", "t_ok", {"x": 1})])
        _, env1, man1, _ = execute_sweep(plan, tmp_path / "r1")
        _, env2, man2, _ = execute_sweep(plan, tmp_path / "r2")
        assert man1["run_id"] != man2["run_id"]
        assert env1["resilience"]["run_id"] != env2["resilience"]["run_id"]
        assert canonical_envelope_bytes(env1) == canonical_envelope_bytes(env2)


class TestGracefulDegradation:
    def test_breakdown_report_renders_failed_rows(self, tmp_path):
        set_global_seed(None)
        plan = breakdown_plan("alexnet", seed=0)
        run_dir = tmp_path / "run"
        result, _, _, records = execute_sweep(plan, run_dir)
        assert not result.failures
        # forge a failed record for one accelerator and reassemble
        records = dict(records)
        records["olaccel16"] = {
            "schema": "repro.cell/v1",
            "cell_id": "olaccel16",
            "kind": "breakdown",
            "status": "failed",
            "attempts": 3,
            "result": None,
            "error": CellError(
                "synthetic", cell_id="olaccel16", kind="timeout", attempts=3
            ).to_dict(),
        }
        partial = PLAN_ASSEMBLERS["breakdown"](plan, records)
        text = partial.format()
        assert FAILED in text
        assert "olaccel16" in partial.failures
        # the surviving accelerators still report absolute numbers
        assert "eyeriss16" in text

    def test_format_failures_table(self):
        errors = [
            CellError("boom", cell_id="rate-0.01", kind="exception", attempts=2).to_dict()
        ]
        text = format_failures(errors)
        assert FAILED in text
        assert "rate-0.01" in text
        assert "exception" in text

    def test_cli_exit_1_on_failed_cells(self, tmp_path, capsys):
        # an impossible per-cell timeout fails every cell but still
        # completes the run, writes the envelope, and exits 1
        code = main(
            [
                "faults", "alexnet", "--rates", "0", "--widths", "24",
                "--run-dir", str(tmp_path / "run"),
                "--timeout", "0.001", "--retries", "1", "--seed", "0",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert FAILED in out
        envelope = load_json(tmp_path / "run" / "envelope.json")
        # a cell that finishes before the supervisor's first poll can
        # legitimately beat the deadline, so >= 1 rather than == 2
        assert envelope["resilience"]["cells_failed"] >= 1
        # ...and resuming with a sane policy completes it cleanly
        code = main(["resume", str(tmp_path / "run")])
        assert code == 0
        envelope = load_json(tmp_path / "run" / "envelope.json")
        assert envelope["resilience"]["cells_failed"] == 0


class TestSeedPropagation:
    def test_worker_reseeds_from_job(self):
        set_global_seed(None)
        _simulate_one(("olaccel16", "alexnet", 0.03, 0, 99))
        assert global_seed() == 99
        set_global_seed(None)

    def test_parallel_run_matches_serial_under_seed(self):
        from repro.harness.experiments import _simulator
        from repro.harness.workloads import paper_workload

        set_global_seed(123)
        parallel = parallel_network_run("olaccel16", "alexnet", jobs=2)
        set_global_seed(123)
        serial = _simulator("olaccel16", "alexnet", 0.03).simulate_network(
            paper_workload("alexnet", ratio=0.03)
        )
        set_global_seed(None)
        assert parallel.to_dict() == serial.to_dict()


class TestInterruptTeardown:
    def test_keyboard_interrupt_joins_pool_workers(self, tmp_path):
        """Regression for the Pool.__exit__-only-terminates bug: SIGINT
        during imap must terminate AND join the workers — the parent
        exits promptly and leaves no orphan processes behind."""
        marker = f"repro-interrupt-test-{os.getpid()}"
        script = tmp_path / "spin.py"
        script.write_text(
            "import sys, time\n"
            "import repro.harness.parallel as par\n"
            "def _stall(job):\n"
            "    time.sleep(120)\n"
            "par._simulate_one = _stall\n"
            "print('READY', flush=True)\n"
            "par.parallel_network_run('olaccel16', 'alexnet', jobs=2)\n"
        )
        proc = subprocess.Popen(
            [sys.executable, str(script), marker],
            env=CLI_ENV,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            assert proc.stdout.readline().strip() == "READY"
            time.sleep(1.5)  # let the pool spin up its sleeping workers
            proc.send_signal(signal.SIGINT)
            proc.wait(timeout=30)  # would hit 120 s if workers weren't torn down
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert proc.returncode != 0
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            if not self._procs_with_marker(marker):
                break
            time.sleep(0.1)
        assert self._procs_with_marker(marker) == []

    @staticmethod
    def _procs_with_marker(marker):
        alive = []
        for pid in os.listdir("/proc"):
            if not pid.isdigit():
                continue
            try:
                cmdline = Path(f"/proc/{pid}/cmdline").read_bytes()
            except OSError:
                continue
            if marker.encode() in cmdline:
                alive.append(pid)
        return alive

    def test_sigterm_during_sweep_exits_cleanly(self, tmp_path):
        """SIGTERM mid-sweep takes the same teardown path as Ctrl-C:
        exit 130, completed cells checkpointed, no envelope yet, and the
        run dir resumes cleanly afterwards."""
        run_dir = tmp_path / "run"
        script = tmp_path / "sweep.py"
        script.write_text(
            "import sys\n"
            "from repro.cli import main\n"
            "sys.exit(main(['faults', 'alexnet', '--rates', '0', '--widths', '24',\n"
            f"               '--run-dir', {str(run_dir)!r}, '--seed', '3',\n"
            "               '--timeout', '300']))\n"
        )
        # make the second cell hang so the sweep is mid-flight when the
        # TERM arrives: patch the width runner to sleep via sitecustomize?
        # Simpler: send TERM as soon as the first cell record appears.
        proc = subprocess.Popen(
            [sys.executable, str(script)],
            env=CLI_ENV,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.monotonic() + 60
            cells = run_dir / "cells"
            while time.monotonic() < deadline and proc.poll() is None:
                if cells.exists() and list(cells.glob("*.json")):
                    break
                time.sleep(0.02)
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        # either the TERM landed mid-sweep (130) or the tiny sweep beat
        # us to completion (0) — both must leave a resumable run dir
        assert proc.returncode in (130, 0), proc.stderr.read()
        result, envelope, _, _ = resume_run(run_dir)
        assert envelope["resilience"]["cells_failed"] == 0
