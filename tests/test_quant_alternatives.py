"""Tests for alternative quantizers and STE fine-tuning (Sec. VI context)."""

import numpy as np
import pytest

from repro.quant import (
    QUANTIZER_REGISTRY,
    QuantConfig,
    compare_quantizers,
    finetune_quantized,
    FinetuneConfig,
    quantize_balanced,
    quantize_clipped,
    quantize_log,
    quantized_weight_view,
)


def heavy_tailed(rng, n=10000, tail=0.02, scale=8.0):
    x = rng.normal(0, 1.0, size=n)
    idx = rng.random(n) < tail
    x[idx] *= scale
    return x


class TestClipped:
    def test_saturates_outliers(self, rng):
        x = heavy_tailed(rng)
        out = quantize_clipped(x, bits=4, clip_quantile=0.95)
        clip = np.quantile(np.abs(x), 0.95)
        assert np.abs(out).max() <= clip + 1e-9

    def test_beats_full_range_linear_on_bulk(self, rng):
        x = heavy_tailed(rng, scale=12.0)
        results = compare_quantizers(x, bits=4, names=["linear", "clipped"])
        assert results["clipped"]["mse"] < results["linear"]["mse"]

    def test_invalid_quantile(self, rng):
        with pytest.raises(ValueError):
            quantize_clipped(rng.normal(size=10), clip_quantile=0.0)

    def test_empty(self):
        assert quantize_clipped(np.zeros(0)).size == 0


class TestLog:
    def test_levels_are_powers_of_two(self, rng):
        x = heavy_tailed(rng)
        out = quantize_log(x, bits=4)
        nonzero = np.abs(out[out != 0])
        exponents = np.log2(nonzero)
        np.testing.assert_allclose(exponents, np.rint(exponents), atol=1e-9)

    def test_covers_wide_dynamic_range(self, rng):
        """Log grids represent both tiny and huge values — their selling point."""
        x = np.array([0.01, 0.1, 1.0, 10.0, 100.0])
        out = quantize_log(x, bits=6)
        relative_err = np.abs(out - x) / x
        assert relative_err.max() < 0.5

    def test_all_zero(self):
        np.testing.assert_array_equal(quantize_log(np.zeros(5)), np.zeros(5))

    def test_sign_preserved(self, rng):
        x = rng.normal(size=100)
        out = quantize_log(x, bits=5)
        mask = out != 0
        np.testing.assert_array_equal(np.sign(out[mask]), np.sign(x[mask]))


class TestBalanced:
    def test_levels_equally_populated(self, rng):
        x = rng.normal(size=16000)
        out = quantize_balanced(x, bits=3)
        _, counts = np.unique(out, return_counts=True)
        assert counts.size <= 8
        assert counts.min() > counts.max() * 0.5  # roughly balanced

    def test_constant_input(self):
        out = quantize_balanced(np.full(10, 3.0), bits=4)
        np.testing.assert_allclose(out, 3.0)

    def test_reduces_error_vs_linear_on_skewed(self, rng):
        x = np.exp(rng.normal(size=8000))  # log-normal: very skewed
        results = compare_quantizers(x, bits=4, names=["linear", "balanced"])
        assert results["balanced"]["mse"] < results["linear"]["mse"]


class TestComparison:
    def test_registry_complete(self):
        assert set(QUANTIZER_REGISTRY) == {"linear", "clipped", "log", "balanced", "oaq"}

    def test_oaq_wins_on_heavy_tails(self, rng):
        """The paper's positioning: at 4 bits on outlier-heavy weights,
        OAQ has the lowest error of all retraining-free methods."""
        x = heavy_tailed(rng, tail=0.02, scale=10.0)
        results = compare_quantizers(x, bits=4)
        oaq_mse = results["oaq"]["mse"]
        for name, metrics in results.items():
            if name != "oaq":
                assert oaq_mse < metrics["mse"], name


class TestFinetune:
    def test_loss_decreases(self, tiny_trained_model, small_dataset):
        import copy

        model = tiny_trained_model
        saved = [p.value.copy() for p in model.parameters()]
        try:
            losses = finetune_quantized(
                model,
                small_dataset.train_x,
                small_dataset.train_y,
                QuantConfig(ratio=0.03),
                FinetuneConfig(epochs=2, lr=0.002),
            )
            assert losses[-1] <= losses[0] * 1.2
        finally:
            for p, s in zip(model.parameters(), saved):
                p.value = s

    def test_masters_restored_each_step(self, tiny_trained_model, small_dataset):
        """After fine-tuning, weights are full precision (not grid-snapped)."""
        model = tiny_trained_model
        saved = [p.value.copy() for p in model.parameters()]
        try:
            finetune_quantized(
                model,
                small_dataset.train_x[:64],
                small_dataset.train_y[:64],
                QuantConfig(ratio=0.03),
                FinetuneConfig(epochs=1),
            )
            w = model.compute_layers()[1].weight.value
            view = quantized_weight_view(model, QuantConfig(ratio=0.03))[1]
            assert not np.allclose(w, view)  # masters kept off-grid
        finally:
            for p, s in zip(model.parameters(), saved):
                p.value = s

    def test_quantized_weight_view_first_layer_bits(self, tiny_trained_model):
        views8 = quantized_weight_view(tiny_trained_model, QuantConfig(first_layer_weight_bits=8))
        views4 = quantized_weight_view(tiny_trained_model, QuantConfig(first_layer_weight_bits=4))
        first = tiny_trained_model.compute_layers()[0].weight.value
        err8 = np.abs(views8[0] - first).mean()
        err4 = np.abs(views4[0] - first).mean()
        assert err8 < err4  # 8-bit grid is finer

    def test_finetuning_recovers_4bit_first_layer(self, small_dataset):
        """The paper's footnote: fine-tuning lets the first layer drop to
        4-bit weights without the accuracy penalty."""
        from repro.nn import TrainConfig, mini_alexnet, train_model
        from repro.quant import QuantizedModel, calibrate_activation_thresholds

        model = mini_alexnet(num_classes=small_dataset.num_classes, seed=21)
        train_model(model, small_dataset.train_x, small_dataset.train_y,
                    TrainConfig(epochs=4, lr=0.01, seed=1))
        quant = QuantConfig(ratio=0.03, first_layer_weight_bits=4)
        cal = calibrate_activation_thresholds(model, small_dataset.train_x[:60], ratio=0.03)
        before = QuantizedModel(model, cal, quant).accuracy(small_dataset.test_x, small_dataset.test_y)

        finetune_quantized(model, small_dataset.train_x, small_dataset.train_y, quant,
                           FinetuneConfig(epochs=2, lr=0.002))
        cal2 = calibrate_activation_thresholds(model, small_dataset.train_x[:60], ratio=0.03)
        after = QuantizedModel(model, cal2, quant).accuracy(small_dataset.test_x, small_dataset.test_y)
        assert after >= before - 0.05  # fine-tuning does not hurt; usually helps
