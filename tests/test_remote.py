"""The HTTP work-dispatch protocol (docs/REMOTE.md).

Three layers:

- unit: the client's :class:`Backoff` schedule;
- the synchronous broker protocol through ``JobServer.handle_request``
  (claim/heartbeat/result/abandon, fencing rejections, idempotent and
  conflicting uploads, re-delivered claims, the TTL reaper on an
  injected clock, the remote/coord counter books);
- end-to-end: a real :class:`RemoteWorker` draining a live ``--workers
  0`` coordinator over real sockets, byte-identical to a cold serial
  run, plus the ``--connect`` CLI surfaces.

tests/chaos/test_remote_chaos.py adds the network-fault-injection
battery on top of the same protocol.
"""

from __future__ import annotations

import json
import random
import threading

import pytest

from repro.cli import main
from repro.errors import RemoteProtocolError
from repro.harness.remote import (
    ABANDON_SCHEMA,
    Backoff,
    CELLSPEC_SCHEMA,
    CLAIM_REQUEST_SCHEMA,
    HEARTBEAT_SCHEMA,
    RESULT_SCHEMA,
    RemoteCellBroker,
    RemoteClient,
    RemoteWorker,
)
from repro.harness.resilience import (
    RunDir,
    canonical_envelope_bytes,
    execute_sweep,
    faults_plan,
)
from repro.harness.serve import JOB_SCHEMA, JobServer, ServeConfig
from repro.obs import Registry
from tests.test_serve_protocol import _LiveServer

FAULTS_DOC = {
    "schema": JOB_SCHEMA,
    "verb": "faults",
    "network": "alexnet",
    "params": {"rates": [0.0], "widths": [24]},
    "seed": 7,
}


def reference_envelope(tmp_path):
    """The envelope a cold serial run of FAULTS_DOC's plan produces."""
    plan = faults_plan(
        "alexnet", rates=(0.0,), widths=(24,), policy="degrade",
        model="bitflip", ratio=0.03, seed=7,
    )
    ref_dir = tmp_path / "reference"
    RunDir(ref_dir).init(plan)
    _, envelope, _, _ = execute_sweep(plan, ref_dir)
    return envelope


# ---------------------------------------------------------------------------
# Backoff
# ---------------------------------------------------------------------------


class TestBackoff:
    def test_grows_exponentially_to_the_cap(self):
        b = Backoff(base_s=1.0, factor=2.0, cap_s=6.0, jitter=0.0)
        assert [b.next_delay() for _ in range(5)] == [1.0, 2.0, 4.0, 6.0, 6.0]

    def test_jitter_stays_within_the_fraction(self):
        b = Backoff(base_s=1.0, factor=2.0, cap_s=64.0, jitter=0.25,
                    rng=random.Random(7))
        for i in range(8):
            raw = min(64.0, 2.0 ** i)
            assert raw * 0.75 <= b.next_delay() <= raw * 1.25

    def test_reset_restarts_the_schedule(self):
        b = Backoff(base_s=1.0, factor=2.0, cap_s=64.0, jitter=0.0)
        assert b.next_delay() == 1.0
        assert b.next_delay() == 2.0
        b.reset()
        assert b.next_delay() == 1.0

    def test_never_negative(self):
        b = Backoff(base_s=0.01, jitter=1.0, rng=random.Random(3))
        assert all(b.next_delay() >= 0.0 for _ in range(50))


# ---------------------------------------------------------------------------
# The broker through the sync request core (no sockets)
# ---------------------------------------------------------------------------


def make_server(tmp_path, **config_kwargs):
    config = ServeConfig(spool=tmp_path / "spool", **config_kwargs)
    return JobServer(config)


def submit(server, doc=FAULTS_DOC):
    status, body, _ = server.handle_request("POST", "/jobs", json.dumps(doc).encode())
    assert status == 202
    return body["job_id"]


def claim(server, worker="w1"):
    return server.handle_request(
        "POST", "/cells/claim",
        json.dumps({"schema": CLAIM_REQUEST_SCHEMA, "worker": worker}).encode(),
    )


def upload(server, claim_doc, status="ok", result=None, worker=None, token=None):
    body = {
        "schema": RESULT_SCHEMA,
        "worker": worker or claim_doc["lease"]["owner"],
        "token": claim_doc["lease"]["token"] if token is None else token,
        "status": status,
        "result": result if result is not None else {"value": 1},
        "error": None if status == "ok" else {"message": "boom"},
        "attempts": 1,
    }
    return server.handle_request(
        "PUT", f"/cells/{claim_doc['claim_id']}/result", json.dumps(body).encode()
    )


def lease_files(server, job_id):
    return sorted((server.store.run_dir(job_id) / "leases").glob("*.lease.json"))


class TestClaim:
    def test_claim_returns_cellspec_with_lease_and_fencing_token(self, tmp_path):
        server = make_server(tmp_path)
        job_id = submit(server)
        status, doc, _ = claim(server)
        assert status == 200
        assert doc["schema"] == CELLSPEC_SCHEMA
        assert doc["job_id"] == job_id
        assert doc["claim_id"]
        assert doc["cell"]["cell_id"] in ("rate-0", "width-24")
        assert doc["cell"]["kind"] in ("fault_rate", "fault_width")
        assert doc["seed"] == 7
        assert doc["lease"]["owner"] == "w1"
        assert doc["lease"]["token"] >= 1
        assert doc["lease"]["ttl_s"] > doc["lease"]["heartbeat_s"] > 0
        # the claim is a real lease file local workers contend on
        assert len(lease_files(server, job_id)) == 1

    def test_idle_only_when_no_jobs_exist(self, tmp_path):
        server = make_server(tmp_path)
        status, doc, _ = claim(server)
        assert status == 200
        assert doc["cell"] is None
        assert doc["idle"] is True

        submit(server)
        # both cells leased out: w3 gets "try again", not "go home"
        claim(server, worker="w1")
        claim(server, worker="w2")
        status, doc, _ = claim(server, worker="w3")
        assert status == 200
        assert doc["cell"] is None
        assert doc["idle"] is False
        assert doc["retry_after_s"] > 0

    def test_two_workers_claim_disjoint_cells(self, tmp_path):
        server = make_server(tmp_path)
        submit(server)
        _, one, _ = claim(server, worker="w1")
        _, two, _ = claim(server, worker="w2")
        assert one["cell"]["cell_id"] != two["cell"]["cell_id"]

    def test_redelivered_claim_returns_same_cell_and_supersedes(self, tmp_path):
        """A worker whose claim response was lost in transit re-claims:
        it gets the same cell back under the same lease, and the
        orphaned first claim settles expired so the books balance."""
        server = make_server(tmp_path)
        submit(server)
        _, first, _ = claim(server)
        _, second, _ = claim(server)
        assert second["cell"]["cell_id"] == first["cell"]["cell_id"]
        assert second["claim_id"] != first["claim_id"]
        assert second["lease"]["token"] == first["lease"]["token"]
        counters = server.obs.snapshot()
        assert counters["remote/claims"] == 2
        assert counters["remote/expired"] == 1
        # the superseded claim still resolves uploads idempotently
        status, doc, _ = upload(server, second)
        assert (status, doc["recorded"]) == (200, True)
        assert server.broker.stats()["reconciles"]

    def test_malformed_claim_is_a_structured_400(self, tmp_path):
        server = make_server(tmp_path)
        for bad in (b"not json", b"[]", b'{"schema": "nope", "worker": "w"}',
                    json.dumps({"schema": CLAIM_REQUEST_SCHEMA, "worker": ""}).encode()):
            status, doc, _ = server.handle_request("POST", "/cells/claim", bad)
            assert status == 400
            assert doc["error"] == "JobError"


class TestHeartbeat:
    def beat(self, server, claim_doc, token=None, worker=None):
        body = {
            "schema": HEARTBEAT_SCHEMA,
            "worker": worker or claim_doc["lease"]["owner"],
            "token": claim_doc["lease"]["token"] if token is None else token,
        }
        return server.handle_request(
            "POST", f"/cells/{claim_doc['claim_id']}/heartbeat", json.dumps(body).encode()
        )

    def test_renews_and_counts(self, tmp_path):
        server = make_server(tmp_path)
        submit(server)
        _, doc, _ = claim(server)
        status, beat, _ = self.beat(server, doc)
        assert status == 200
        assert beat["ok"] is True
        assert beat["heartbeats"] >= 1
        assert server.obs.snapshot()["remote/heartbeats"] == 1

    def test_stale_fencing_token_is_a_structured_409(self, tmp_path):
        server = make_server(tmp_path)
        submit(server)
        _, doc, _ = claim(server)
        status, body, _ = self.beat(server, doc, token=doc["lease"]["token"] + 5)
        assert status == 409
        assert body["error"] == "RemoteProtocolError"
        assert body["reason"] == "stale_token"
        # a wrong worker id is the same rejection
        status, body, _ = self.beat(server, doc, worker="imposter")
        assert (status, body["reason"]) == (409, "stale_token")
        assert server.obs.snapshot()["remote/stale_tokens"] == 2

    def test_unknown_claim_is_410(self, tmp_path):
        server = make_server(tmp_path)
        submit(server)
        body = {"schema": HEARTBEAT_SCHEMA, "worker": "w1", "token": 1}
        status, doc, _ = server.handle_request(
            "POST", "/cells/no-such-claim/heartbeat", json.dumps(body).encode()
        )
        assert status == 410
        assert doc["reason"] == "unknown_claim"

    def test_settled_claim_is_410(self, tmp_path):
        server = make_server(tmp_path)
        submit(server)
        _, doc, _ = claim(server)
        upload(server, doc)
        status, body, _ = self.beat(server, doc)
        assert status == 410
        assert body["reason"] == "claim_settled"


class TestResult:
    def test_upload_settles_the_claim_and_releases_the_lease(self, tmp_path):
        server = make_server(tmp_path)
        job_id = submit(server)
        _, doc, _ = claim(server)
        status, body, _ = upload(server, doc)
        assert status == 200
        assert body == {"recorded": True, "duplicate": False, "state": "done"}
        assert lease_files(server, job_id) == []
        counters = server.obs.snapshot()
        assert counters["remote/claims"] == 1
        assert counters["remote/completed"] == 1
        assert server.broker.stats() == {
            "claims": 1, "completed": 1, "expired": 0, "abandoned": 0,
            "active": 0, "reconciles": True,
        }

    def test_duplicate_upload_is_idempotent_and_counted(self, tmp_path):
        """At-least-once semantics: the network retry of a result that
        already landed is discarded, counted, never an error."""
        server = make_server(tmp_path)
        submit(server)
        _, doc, _ = claim(server)
        upload(server, doc, result={"value": 42})
        status, body, _ = upload(server, doc, result={"value": 42})
        assert status == 200
        assert body["duplicate"] is True
        counters = server.obs.snapshot()
        assert counters["remote/duplicates"] == 1
        assert counters["coord/duplicates"] == 1
        assert counters["remote/completed"] == 1  # settled exactly once
        assert server.broker.stats()["reconciles"]

    def test_diverging_upload_is_a_cell_conflict_409(self, tmp_path):
        server = make_server(tmp_path)
        submit(server)
        _, doc, _ = claim(server)
        upload(server, doc, result={"value": 1})
        status, body, _ = upload(server, doc, result={"value": 2})
        assert status == 409
        assert body["error"] == "ArtifactIntegrityError"
        assert body["reason"] == "cell_conflict"
        assert server.obs.snapshot()["remote/conflicts"] == 1

    def test_double_completion_across_the_network_boundary(self, tmp_path):
        """Satellite: a filesystem worker and a remote worker race the
        same cell; the local record lands first and the remote upload is
        the counted duplicate (first durable record wins)."""
        server = make_server(tmp_path)
        job_id = submit(server)
        _, doc, _ = claim(server)
        # the local worker computes the same cell and records first,
        # straight through the shared run dir
        rundir = RunDir(server.store.run_dir(job_id))
        plan = rundir.plan_from_manifest(rundir.load_manifest())
        spec = next(c for c in plan.cells if c.cell_id == doc["cell"]["cell_id"])
        _, wrote = rundir.write_cell_exclusive(spec, "ok", result={"value": 42})
        assert wrote
        status, body, _ = upload(server, doc, result={"value": 42})
        assert status == 200
        assert body["duplicate"] is True
        counters = server.obs.snapshot()
        assert counters["coord/duplicates"] == 1
        assert counters["remote/completed"] == 1
        assert server.broker.stats()["reconciles"]
        # ...and a diverging race is corruption, loudly
        _, doc2, _ = claim(server)
        spec2 = next(c for c in plan.cells if c.cell_id == doc2["cell"]["cell_id"])
        rundir.write_cell_exclusive(spec2, "ok", result={"value": 1})
        status, body, _ = upload(server, doc2, result={"value": 2})
        assert (status, body["reason"]) == (409, "cell_conflict")

    def test_stale_token_upload_is_rejected(self, tmp_path):
        server = make_server(tmp_path)
        submit(server)
        _, doc, _ = claim(server)
        status, body, _ = upload(server, doc, token=99)
        assert (status, body["reason"]) == (409, "stale_token")

    def test_malformed_result_fields_are_400(self, tmp_path):
        server = make_server(tmp_path)
        submit(server)
        _, doc, _ = claim(server)
        for patch in ({"status": "maybe"}, {"attempts": 0}, {"attempts": True},
                      {"error": "a string"}, {"token": "1"}):
            body = {
                "schema": RESULT_SCHEMA, "worker": "w1",
                "token": doc["lease"]["token"], "status": "ok",
                "result": {}, "error": None, "attempts": 1,
            }
            body.update(patch)
            status, out, _ = server.handle_request(
                "PUT", f"/cells/{doc['claim_id']}/result", json.dumps(body).encode()
            )
            assert status == 400, patch
            assert out["error"] == "JobError"


class TestAbandonAndReaper:
    def test_abandon_releases_the_cell_for_others(self, tmp_path):
        server = make_server(tmp_path)
        job_id = submit(server)
        _, doc, _ = claim(server)
        body = {
            "schema": ABANDON_SCHEMA, "worker": "w1",
            "token": doc["lease"]["token"],
        }
        status, out, _ = server.handle_request(
            "POST", f"/cells/{doc['claim_id']}/abandon", json.dumps(body).encode()
        )
        assert status == 200
        assert out["released"] is True
        assert server.obs.snapshot()["remote/abandoned"] == 1
        # idempotent: a second abandon reports the settled state
        status, out, _ = server.handle_request(
            "POST", f"/cells/{doc['claim_id']}/abandon", json.dumps(body).encode()
        )
        assert (status, out["released"]) == (200, False)
        # another worker can claim the freed cell (and the other one)
        _, again, _ = claim(server, worker="w2")
        assert again["cell"] is not None
        assert len(lease_files(server, job_id)) == 1
        assert server.broker.stats()["reconciles"]

    def test_reaper_expires_silent_claims_and_late_upload_still_lands(self, tmp_path):
        server = make_server(tmp_path)
        job_id = submit(server)
        now = [0.0]
        obs = Registry()
        broker = RemoteCellBroker(
            server.store, server._claimable_job_ids,
            ttl_s=5.0, heartbeat_s=1.0, obs=obs, clock=lambda: now[0],
        )
        status, doc, _ = broker.claim({"schema": CLAIM_REQUEST_SCHEMA, "worker": "w1"})
        assert status == 200 and doc["cell"] is not None
        assert broker.reap() == 0  # fresh claim survives
        now[0] = 7.0  # past ttl + skew margin: the client went silent
        assert broker.reap() == 1
        assert obs.snapshot()["remote/expired"] == 1
        assert lease_files(server, job_id) == []
        # the zombie's heartbeat learns the claim is settled
        status, body, _ = broker.heartbeat(
            doc["claim_id"],
            {"schema": HEARTBEAT_SCHEMA, "worker": "w1", "token": doc["lease"]["token"]},
        )
        assert (status, body["reason"]) == (410, "claim_settled")
        # ...but its upload still lands: first durable record wins
        status, body = broker.result(
            doc["claim_id"],
            {
                "schema": RESULT_SCHEMA, "worker": "w1",
                "token": doc["lease"]["token"], "status": "ok",
                "result": {"value": 9}, "error": None, "attempts": 1,
            },
        )[:2]
        assert status == 200
        assert body["recorded"] is True
        assert body["state"] == "expired"
        counters = obs.snapshot()
        assert counters["remote/late_results"] == 1
        assert counters["remote/claims"] == 1
        assert counters["remote/claims"] == (
            counters.get("remote/completed", 0) + counters["remote/expired"]
            + counters.get("remote/abandoned", 0)
        )

    def test_forget_job_settles_outstanding_claims(self, tmp_path):
        server = make_server(tmp_path)
        job_id = submit(server)
        _, doc, _ = claim(server)
        assert doc["cell"] is not None
        server.broker.forget_job(job_id)
        stats = server.broker.stats()
        assert stats["active"] == 0
        assert stats["reconciles"]


# ---------------------------------------------------------------------------
# End to end: a real worker over real sockets, --workers 0 coordinator
# ---------------------------------------------------------------------------


class TestRemoteWorkerEndToEnd:
    def test_remote_only_drain_is_byte_identical_to_serial(self, tmp_path):
        """The acceptance bar: a job drained solely by remote workers
        over HTTP produces the byte-identical envelope, zero orphaned
        leases, and exactly-reconciling remote/* counters."""
        config = ServeConfig(spool=tmp_path / "spool", workers=0)
        with _LiveServer(config) as live:
            _, doc = live.request("POST", "/jobs", FAULTS_DOC)
            job_id = doc["job_id"]
            obs = Registry()
            client = RemoteClient(
                f"http://127.0.0.1:{live.server.port}", timeout_s=10.0, obs=obs
            )
            worker = RemoteWorker(client, owner="remote-1", obs=obs)
            assert worker.run() == 0
            final = live.wait_state(job_id)
            assert final["state"] == "DONE"
            # every cell was computed by the remote worker, none locally
            counters = obs.snapshot()
            assert counters["remote/cells_completed"] == 2
            status, stats = live.request("GET", "/stats")
            assert stats["remote"] == {
                "claims": 2, "completed": 2, "expired": 0, "abandoned": 0,
                "active": 0, "reconciles": True,
            }
            assert stats["jobs"]["reconciles"]
            run_dir = live.server.store.run_dir(job_id)
            envelope = json.loads((run_dir / "envelope.json").read_text())
            assert list((run_dir / "leases").glob("*")) == []
        reference = reference_envelope(tmp_path)
        assert canonical_envelope_bytes(envelope) == canonical_envelope_bytes(reference)

    def test_worker_exits_zero_when_server_is_idle(self, tmp_path):
        config = ServeConfig(spool=tmp_path / "spool", workers=0)
        with _LiveServer(config) as live:
            client = RemoteClient(f"http://127.0.0.1:{live.server.port}")
            assert RemoteWorker(client, owner="idle-1").run() == 0

    def test_unreachable_server_exhausts_the_retry_budget(self, tmp_path):
        client = RemoteClient(
            "http://127.0.0.1:9", timeout_s=0.2, retries=1,
            backoff=Backoff(base_s=0.01, cap_s=0.02, jitter=0.0),
        )
        with pytest.raises(RemoteProtocolError) as err:
            client.request("GET", "/healthz")
        assert err.value.reason == "unreachable"
        worker = RemoteWorker(client, owner="lost-1", max_failures=2)
        assert worker.run() == 3

    def test_lost_lease_mid_cell_still_uploads_first_record_wins(self, tmp_path):
        """A worker that loses its lease mid-compute finishes and
        uploads anyway; whether it is recorded or counted duplicate is
        decided by the durable record, not the lease."""
        server = make_server(tmp_path)
        submit(server)
        _, doc, _ = claim(server)
        # the TTL machinery (simulated by forgetting the claim) fences
        # the worker off while it is still computing
        server.broker._settle(server.broker._claims[doc["claim_id"]], "expired")
        status, body, _ = upload(server, doc, result={"value": 3})
        assert status == 200
        assert body["recorded"] is True
        assert body["state"] == "expired"
        assert server.obs.snapshot()["remote/late_results"] == 1
        assert server.broker.stats()["reconciles"]


class TestConnectCli:
    def test_work_requires_exactly_one_target(self, capsys):
        assert main(["work"]) == 2
        assert main(["work", "somedir", "--connect", "http://x"]) == 2
        assert main(["status"]) == 2
        err = capsys.readouterr().err
        assert "exactly one of" in err

    def test_status_connect_renders_the_job_table(self, tmp_path, capsys):
        config = ServeConfig(spool=tmp_path / "spool", workers=0)
        with _LiveServer(config) as live:
            _, doc = live.request("POST", "/jobs", FAULTS_DOC)
            url = f"http://127.0.0.1:{live.server.port}"
            assert main(["status", "--connect", url]) == 0
            out = capsys.readouterr().out
            assert doc["job_id"] in out
            assert "rate-0" in out and "width-24" in out
            assert "pending" in out

    def test_status_connect_unreachable_is_exit_2(self, capsys):
        assert main(["status", "--connect", "http://127.0.0.1:9",
                     "--request-timeout", "0.2"]) == 2
        assert "unreachable" in capsys.readouterr().err

    def test_work_connect_drains_the_spool(self, tmp_path, capsys):
        config = ServeConfig(spool=tmp_path / "spool", workers=0)
        with _LiveServer(config) as live:
            _, doc = live.request("POST", "/jobs", FAULTS_DOC)
            url = f"http://127.0.0.1:{live.server.port}"
            assert main(["work", "--connect", url]) == 0
            final = live.wait_state(doc["job_id"])
            assert final["state"] == "DONE"
