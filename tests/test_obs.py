"""Tests for the repro.obs observability layer and its simulator hooks."""

import numpy as np
import pytest

from repro.baselines import EyerissSimulator, ZenaSimulator
from repro.obs import (
    NULL_REGISTRY,
    Registry,
    Tracer,
    get_registry,
    set_registry,
)
from repro.obs.registry import _NULL_COUNTER, _NULL_TIMER
from repro.olaccel import ClusterSim, OLAccelSimulator, passes_from_levels
from repro.harness.workloads import paper_workload


class TestRegistry:
    def test_counter_accumulates(self):
        reg = Registry()
        reg.counter("a").add()
        reg.counter("a").add(2.5)
        assert reg.counters["a"].value == 3.5

    def test_scope_builds_hierarchical_paths(self):
        reg = Registry()
        with reg.scope("olaccel16"):
            with reg.scope("conv1"):
                reg.counter("cycles").add(7)
        assert reg.counters["olaccel16/conv1/cycles"].value == 7

    def test_scope_pops_on_exit(self):
        reg = Registry()
        with reg.scope("outer"):
            pass
        reg.counter("top").add()
        assert "top" in reg.counters

    def test_histogram_stats(self):
        reg = Registry()
        hist = reg.histogram("h")
        for v in (1, 1, 4):
            hist.record(v)
        assert hist.count == 3
        assert hist.mean == pytest.approx(2.0)
        assert hist.max == 4
        assert hist.buckets == {1: 2, 4: 1}

    def test_timer_measures_and_counts(self):
        reg = Registry()
        with reg.timer("t"):
            pass
        with reg.timer("t"):
            pass
        timer = reg.timers["t"]
        assert timer.calls == 2
        assert timer.seconds >= 0.0

    def test_disabled_registry_hands_out_null_instruments(self):
        reg = Registry(enabled=False)
        assert reg.counter("x") is _NULL_COUNTER
        assert reg.timer("x") is _NULL_TIMER
        reg.counter("x").add(5)
        with reg.timer("x"):
            pass
        reg.histogram("x").record(1)
        assert reg.counters == {} and reg.timers == {} and reg.histograms == {}

    def test_snapshot_and_to_dict(self):
        reg = Registry()
        reg.counter("a").add(2)
        with reg.timer("t"):
            pass
        reg.histogram("h").record(3)
        flat = reg.snapshot()
        assert flat["a"] == 2
        assert "t.seconds" in flat
        doc = reg.to_dict()
        assert doc["counters"]["a"] == 2
        assert doc["histograms"]["h"]["buckets"] == {"3": 1}
        assert doc["timers"]["t"]["calls"] == 1

    def test_reset(self):
        reg = Registry()
        reg.counter("a").add()
        reg.reset()
        assert reg.counters == {}

    def test_global_registry_swap_and_restore(self):
        assert get_registry() is NULL_REGISTRY
        mine = Registry()
        previous = set_registry(mine)
        try:
            assert get_registry() is mine
        finally:
            set_registry(previous)
        assert get_registry() is NULL_REGISTRY


class TestTracer:
    def test_emit_and_filter(self):
        tracer = Tracer()
        tracer.emit(3, "pass_done", group=1)
        tracer.emit(4, "other")
        assert [e.cycle for e in tracer.of_kind("pass_done")] == [3]
        assert tracer.to_dicts()[0] == {"cycle": 3, "kind": "pass_done", "group": 1}

    def test_bounded_ring_drops_oldest(self):
        tracer = Tracer(capacity=2)
        for cycle in range(4):
            tracer.emit(cycle, "e")
        assert tracer.dropped == 2
        assert [e.cycle for e in tracer.events] == [2, 3]

    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.emit(1, "e")
        assert tracer.events == []


def random_passes(rng, n=300, density=0.5, spill_p=0.08):
    levels = (rng.random((n, 16)) < density) * rng.integers(1, 16, size=(n, 16))
    flags = rng.random((n, 16)) < spill_p
    return passes_from_levels(levels, flags)


class TestEventSimHooks:
    def test_trace_counters_match_cluster_result(self):
        """The obs counters may never drift from the returned result."""
        rng = np.random.default_rng(0)
        reg = Registry()
        sim = ClusterSim(n_groups=3, obs=reg)
        result = sim.run(random_passes(rng), outlier_broadcasts=40)
        counters = {path: c.value for path, c in reg.counters.items()}
        assert counters["run_cycles"] == result.run_cycles
        assert counters["skip_cycles"] == result.skip_cycles
        assert counters["idle_cycles"] == result.idle_cycles
        assert counters["cycles"] == result.cycles
        assert counters["passes"] == result.passes
        assert counters["outlier_broadcasts"] == result.outlier_cycles
        assert counters["accumulation_stalls"] == result.accumulation_stalls
        assert counters["ops/bcast"] == result.bcast_cycles
        assert counters["ops/stall"] == result.stall_cycles
        assert counters["ops/skip"] == result.skip_cycles

    def test_micro_op_split_is_consistent(self):
        rng = np.random.default_rng(1)
        result = ClusterSim(n_groups=2).run(random_passes(rng))
        assert result.bcast_cycles + result.stall_cycles == result.run_cycles
        assert result.max_queue_depth == 300

    def test_pass_done_trace_events(self):
        rng = np.random.default_rng(2)
        tracer = Tracer()
        result = ClusterSim(n_groups=2, tracer=tracer).run(random_passes(rng, n=50))
        done = tracer.of_kind("pass_done")
        assert len(done) == result.passes == 50
        cycles = [e.cycle for e in done]
        assert cycles == sorted(cycles)
        assert cycles[-1] <= result.cycles

    def test_queue_histogram_records_every_cycle(self):
        rng = np.random.default_rng(3)
        reg = Registry()
        result = ClusterSim(n_groups=2, obs=reg).run(random_passes(rng, n=40))
        assert reg.histograms["queue_depth"].count == result.cycles
        assert reg.histograms["tribuffer_active"].count > 0

    def test_untraced_run_matches_traced_run(self):
        """Instrumentation must not change simulated behaviour."""
        plain = ClusterSim(n_groups=3).run(random_passes(np.random.default_rng(4)))
        traced = ClusterSim(n_groups=3, obs=Registry(), tracer=Tracer()).run(
            random_passes(np.random.default_rng(4))
        )
        assert plain == traced


class TestSimulatorHooks:
    def test_olaccel_counters_match_run_stats(self):
        workload = paper_workload("alexnet")
        reg = Registry()
        sim = OLAccelSimulator(obs=reg)
        run = sim.simulate_network(workload)
        prefix = sim.config.name
        for stat in run.layers:
            base = f"{prefix}/{stat.layer_name}"
            assert reg.counters[f"{base}/cycles"].value == pytest.approx(stat.cycles)
            assert reg.counters[f"{base}/run_cycles"].value == pytest.approx(stat.run_cycles)
            assert reg.counters[f"{base}/skip_cycles"].value == pytest.approx(stat.skip_cycles)
            assert reg.counters[f"{base}/idle_cycles"].value == pytest.approx(stat.idle_cycles)
        total_run = sum(c.value for c in reg.iter_counters(prefix) if c.name.endswith("/run_cycles"))
        assert total_run == pytest.approx(run.total_run_cycles)
        assert reg.timers[f"simulate/{workload.name}"].calls == 1

    @pytest.mark.parametrize("sim_cls", [EyerissSimulator, ZenaSimulator])
    def test_baseline_counters_match_run_stats(self, sim_cls):
        workload = paper_workload("alexnet")
        reg = Registry()
        sim = sim_cls(obs=reg)
        run = sim.simulate_network(workload)
        for stat in run.layers:
            path = f"{sim.config.name}/{stat.layer_name}/cycles"
            assert reg.counters[path].value == pytest.approx(stat.cycles)
        assert reg.timers[f"simulate/{workload.name}"].calls == 1

    def test_default_is_unobserved(self):
        sim = OLAccelSimulator()
        assert sim.obs is NULL_REGISTRY
        sim.simulate_network(paper_workload("alexnet"))
        assert NULL_REGISTRY.counters == {}
