"""Cross-simulator invariant tests: OLAccel vs Eyeriss vs ZeNA (Sec. V)."""

import numpy as np
import pytest

from repro.arch.workload import LayerWorkload, NetworkWorkload, from_spec
from repro.baselines import (
    EyerissSimulator,
    ZenaSimulator,
    eyeriss16,
    eyeriss8,
    zena16,
    zena8,
)
from repro.harness import conv_only, paper_workload
from repro.nn.zoo_paper import alexnet_spec
from repro.olaccel import OLAccelSimulator, olaccel16, olaccel8


@pytest.fixture(scope="module")
def alexnet_conv():
    return paper_workload("alexnet")


def make_layer(**overrides):
    base = dict(
        name="test",
        kind="conv",
        macs=3 * 3 * 64 * 64 * 28 * 28,
        weight_count=3 * 3 * 64 * 64,
        input_count=64 * 28 * 28,
        output_count=64 * 28 * 28,
        out_channels=64,
        kernel=3,
        stride=1,
        act_density=0.5,
        weight_density=0.5,
    )
    base.update(overrides)
    return LayerWorkload(**base)


class TestWorkload:
    def test_from_spec_layer_count(self):
        net = from_spec(alexnet_spec())
        assert len(net.layers) == 8

    def test_conv_only_strips_fc(self):
        net = conv_only(from_spec(alexnet_spec()))
        assert len(net.layers) == 5
        assert all(l.kind == "conv" for l in net.layers)

    def test_with_ratio_keeps_first_layer(self):
        net = paper_workload("alexnet", ratio=0.05)
        assert net.layers[0].act_outlier_ratio == 0.0  # raw input
        assert net.layers[1].act_outlier_ratio == 0.05

    def test_out_groups(self):
        assert make_layer(out_channels=64).out_groups == 4
        assert make_layer(out_channels=65).out_groups == 5

    def test_invalid_density_raises(self):
        with pytest.raises(ValueError):
            make_layer(act_density=1.5)


class TestEyeriss:
    def test_cycles_sparsity_independent(self):
        sim = EyerissSimulator(eyeriss16())
        dense = sim.simulate_layer(make_layer(act_density=1.0))
        sparse = sim.simulate_layer(make_layer(act_density=0.1))
        assert dense.cycles == sparse.cycles

    def test_cycles_same_for_16_and_8(self, alexnet_conv):
        c16 = EyerissSimulator(eyeriss16()).simulate_network(alexnet_conv).total_cycles
        c8 = EyerissSimulator(eyeriss8()).simulate_network(alexnet_conv).total_cycles
        assert c16 == pytest.approx(c8)

    def test_energy_halves_ish_at_8bit(self, alexnet_conv):
        e16 = EyerissSimulator(eyeriss16()).simulate_network(alexnet_conv).total_energy.total
        e8 = EyerissSimulator(eyeriss8()).simulate_network(alexnet_conv).total_energy.total
        assert 0.3 < e8 / e16 < 0.7

    def test_zero_gating_saves_logic_only(self):
        sim = EyerissSimulator(eyeriss16())
        dense = sim.simulate_layer(make_layer(act_density=1.0))
        sparse = sim.simulate_layer(make_layer(act_density=0.2))
        assert sparse.energy.logic < dense.energy.logic
        assert sparse.energy.dram == dense.energy.dram
        assert sparse.energy.local == dense.energy.local

    def test_act_spill_adds_dram(self):
        small = EyerissSimulator(eyeriss16(buffer_bytes=16 * 1024))
        big = EyerissSimulator(eyeriss16(buffer_bytes=16 * 1024 * 1024))
        layer = make_layer()
        assert small.simulate_layer(layer).energy.dram > big.simulate_layer(layer).energy.dram


class TestZena:
    def test_skips_zero_weights_and_acts(self):
        sim = ZenaSimulator(zena16())
        dense = sim.simulate_layer(make_layer(act_density=1.0, weight_density=1.0))
        sparse = sim.simulate_layer(make_layer(act_density=0.5, weight_density=0.5))
        assert sparse.cycles == pytest.approx(dense.cycles * 0.25)

    def test_faster_than_eyeriss_on_sparse(self, alexnet_conv):
        zena = ZenaSimulator(zena16()).simulate_network(alexnet_conv)
        eyeriss = EyerissSimulator(eyeriss16()).simulate_network(alexnet_conv)
        assert zena.total_cycles < eyeriss.total_cycles
        assert zena.total_energy.total < eyeriss.total_energy.total

    def test_sparse_weight_storage(self):
        sim = ZenaSimulator(zena16())
        dense_w = sim.simulate_layer(make_layer(weight_density=1.0, act_density=0.999))
        sparse_w = sim.simulate_layer(make_layer(weight_density=0.2, act_density=0.999))
        assert sparse_w.energy.dram < dense_w.energy.dram

    def test_paper_alexnet_speedup_range(self, alexnet_conv):
        """ZeNA reported ~4.4x over dense baselines on pruned AlexNet."""
        zena = ZenaSimulator(zena16()).simulate_network(alexnet_conv)
        eyeriss = EyerissSimulator(eyeriss16()).simulate_network(alexnet_conv)
        speedup = eyeriss.total_cycles / zena.total_cycles
        assert 2.0 < speedup < 6.0


class TestOLAccel:
    def test_config_mac_counts(self):
        assert olaccel16().n_macs == 768  # Table I, 16-bit comparison
        assert olaccel8().n_macs == 576  # Table I, 8-bit comparison
        assert olaccel16().n_outlier_groups == 8

    def test_cycles_increase_with_outlier_ratio(self):
        """Fig. 14: more outliers -> more multi-outlier chunks -> more cycles."""
        sim = OLAccelSimulator(olaccel16())
        costs = [
            sim.simulate_layer(make_layer(act_outlier_ratio=r, weight_outlier_ratio=r)).cycles
            for r in (0.0, 0.02, 0.05)
        ]
        assert costs[0] < costs[1] < costs[2]

    def test_energy_increases_with_outlier_ratio(self):
        sim = OLAccelSimulator(olaccel16())
        e = [
            sim.simulate_layer(make_layer(act_outlier_ratio=r, weight_outlier_ratio=r)).energy.total
            for r in (0.0, 0.02, 0.05)
        ]
        assert e[0] < e[1] < e[2]

    def test_zero_skip_reduces_cycles(self):
        sim = OLAccelSimulator(olaccel16())
        dense = sim.simulate_layer(make_layer(act_density=0.9))
        sparse = sim.simulate_layer(make_layer(act_density=0.2))
        assert sparse.cycles < dense.cycles

    def test_weight_density_does_not_change_cycles(self):
        """OLAccel skips only zero activations (Sec. V)."""
        sim = OLAccelSimulator(olaccel16())
        a = sim.simulate_layer(make_layer(weight_density=1.0))
        b = sim.simulate_layer(make_layer(weight_density=0.3))
        assert a.cycles == b.cycles

    def test_first_layer_dense_factor(self):
        sim = OLAccelSimulator(olaccel16())
        normal = sim.simulate_layer(make_layer(act_density=1.0, act_outlier_ratio=0.0, weight_outlier_ratio=0.0))
        first = sim.simulate_layer(make_layer(is_first=True, first_weight_bits=8))
        # 16-bit acts x 8-bit weights = 8 passes on 4-bit MACs (Sec. V).
        assert first.cycles == pytest.approx(normal.cycles * 8, rel=0.05)

    def test_first_layer_8bit_comparison_factor(self):
        sim = OLAccelSimulator(olaccel8())
        normal = sim.simulate_layer(make_layer(act_density=1.0, act_outlier_ratio=0.0, weight_outlier_ratio=0.0))
        first = sim.simulate_layer(make_layer(is_first=True, first_weight_bits=8))
        assert first.cycles == pytest.approx(normal.cycles * 4, rel=0.05)

    def test_outlier_path_parallel_not_additive(self):
        """Outlier work below the dense work does not extend the layer."""
        sim = OLAccelSimulator(olaccel16())
        base = sim.simulate_layer(make_layer(act_outlier_ratio=0.0, weight_outlier_ratio=0.0))
        with_outliers = sim.simulate_layer(make_layer(act_outlier_ratio=0.03, weight_outlier_ratio=0.0))
        # 3% outliers on 6x fewer groups is ~18% of dense work: hidden.
        assert with_outliers.cycles < base.cycles * 1.05

    def test_massive_outlier_ratio_becomes_bottleneck(self):
        sim = OLAccelSimulator(olaccel16())
        stats = sim.simulate_layer(make_layer(act_outlier_ratio=0.5, weight_outlier_ratio=0.0))
        assert stats.extras["outlier_cycles"] > 0
        # outlier path: 50% of nonzero on 8 groups vs 50%-ish on 48 groups
        assert stats.cycles == pytest.approx(stats.extras["outlier_cycles"], rel=0.05)

    def test_run_skip_idle_accounting(self, alexnet_conv):
        sim = OLAccelSimulator(olaccel16())
        for layer in alexnet_conv.layers:
            stats = sim.simulate_layer(layer)
            group_cycles = stats.cycles * sim.config.n_groups
            assert stats.run_cycles + stats.skip_cycles <= group_cycles * 1.001


class TestHeadlineResults:
    """The paper's Sec. V headline orderings must hold."""

    NETWORKS = ("alexnet", "vgg16", "resnet18")

    @pytest.mark.parametrize("network", NETWORKS)
    def test_olaccel16_beats_zena16_energy(self, network):
        from repro.harness import breakdown_experiment

        result = breakdown_experiment(network)
        reduction = result.reduction("olaccel16", "zena16", "energy")
        assert 0.25 < reduction < 0.75  # paper: 43.5% / 56.7% / 62.2%

    @pytest.mark.parametrize("network", NETWORKS)
    def test_olaccel8_beats_zena8_energy(self, network):
        from repro.harness import breakdown_experiment

        result = breakdown_experiment(network)
        assert result.reduction("olaccel8", "zena8", "energy") > 0.1

    @pytest.mark.parametrize("network", NETWORKS)
    def test_cycle_ordering(self, network):
        from repro.harness import breakdown_experiment

        cycles = breakdown_experiment(network).normalized_cycles()
        assert cycles["olaccel16"] < cycles["zena16"] < cycles["eyeriss16"]

    def test_alexnet_cycle_reduction_vs_eyeriss(self):
        from repro.harness import breakdown_experiment

        result = breakdown_experiment("alexnet")
        reduction = 1.0 - result.normalized_cycles()["olaccel16"]
        assert 0.65 < reduction < 0.8  # paper: 71.8%

    def test_resnet_first_layer_dominates_olaccel(self):
        """Sec. V: ResNet-18's C1 takes ~half of OLAccel16's cycles."""
        from repro.harness import breakdown_experiment

        result = breakdown_experiment("resnet18")
        layer_cycles = result.layer_cycles("olaccel16")
        total = sum(layer_cycles.values())
        assert 0.3 < layer_cycles["conv1"] / total < 0.65

    def test_memory_components_dominate_energy_gain(self):
        """Sec. V: 'the energy gain mostly comes from the memory components'."""
        from repro.harness import breakdown_experiment

        result = breakdown_experiment("alexnet")
        en = result.normalized_energy()
        memory_gain = (en["zena16"]["dram"] + en["zena16"]["buffer"] + en["zena16"]["local"]) - (
            en["olaccel16"]["dram"] + en["olaccel16"]["buffer"] + en["olaccel16"]["local"]
        )
        logic_gain = en["zena16"]["logic"] - en["olaccel16"]["logic"]
        assert memory_gain > logic_gain
