"""Tests for chunk formats and weight packing (repro.arch, Figs. 5/9)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.arch import (
    LANES,
    WEIGHT_CHUNK_BITS,
    ActivationChunk,
    OutlierActivation,
    OutlierActivationFifo,
    WeightChunk,
    combine_outlier_weight,
    decode_weight_nibble,
    encode_weight_nibble,
    pack_weights,
    split_outlier_weight,
)


class TestNibbleCodec:
    def test_roundtrip_all_values(self):
        for level in range(-7, 8):
            assert decode_weight_nibble(encode_weight_nibble(level)) == level

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            encode_weight_nibble(8)
        with pytest.raises(ValueError):
            decode_weight_nibble(16)

    def test_sign_bit_position(self):
        assert encode_weight_nibble(-3) == 0b1011
        assert encode_weight_nibble(3) == 0b0011


class TestOutlierSplit:
    @given(st.integers(-127, 127))
    @settings(max_examples=300, deadline=None)
    def test_split_combine_roundtrip(self, level):
        msb, lsb = split_outlier_weight(level)
        assert combine_outlier_weight(msb, lsb) == level
        assert abs(lsb) <= 7  # fits the lane nibble
        assert abs(msb) <= 15  # fits the OLmsb field

    def test_normal_weight_has_zero_msb(self):
        for level in range(-7, 8):
            msb, lsb = split_outlier_weight(level)
            assert msb == 0 and lsb == level

    def test_outlier_msb_nonzero(self):
        for level in (8, -8, 127, -127, 64):
            msb, _ = split_outlier_weight(level)
            assert msb != 0

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            split_outlier_weight(128)


class TestChunkStructures:
    def test_weight_chunk_lane_count_enforced(self):
        with pytest.raises(ValueError):
            WeightChunk(lanes=(0,) * 15)

    def test_chunk_cycle_cost(self):
        plain = WeightChunk(lanes=(0,) * 16)
        single = WeightChunk(lanes=(0,) * 16, ol_idx=3, ol_msb=2)
        multi = WeightChunk(lanes=(0,) * 16, ol_ptr=0)
        assert plain.cycles == 1  # no outlier: free
        assert single.cycles == 1  # one outlier: absorbed by the outlier MAC
        assert multi.cycles == 2  # spill chunk: extra pass (Fig. 8)

    def test_activation_chunk_zero_quads(self):
        values = [0] * 16
        assert ActivationChunk(tuple(values)).zero_quads == 4
        values[0] = 5
        assert ActivationChunk(tuple(values)).zero_quads == 3
        values[5], values[9], values[13] = 1, 1, 1
        assert ActivationChunk(tuple(values)).zero_quads == 0

    def test_activation_chunk_nonzero_count(self):
        chunk = ActivationChunk(tuple([1, 0, 2, 0] * 4))
        assert chunk.nonzero_count == 8

    def test_fifo_order(self):
        fifo = OutlierActivationFifo()
        fifo.push(OutlierActivation(100, 0, 0, 0))
        fifo.push(OutlierActivation(200, 1, 1, 1))
        assert len(fifo) == 2
        assert fifo.pop().value == 100
        assert fifo.pop().value == 200


class TestPacking:
    def test_dense_normal_weights_no_spill(self, rng):
        levels = rng.integers(-7, 8, size=(32, 18))
        packed = pack_weights(levels)
        assert packed.spill_chunks == []
        assert packed.multi_outlier_chunks == 0
        np.testing.assert_array_equal(packed.unpack(), levels)

    def test_single_outlier_uses_msb_field(self):
        levels = np.zeros((16, 1), dtype=np.int64)
        levels[5, 0] = 100
        packed = pack_weights(levels)
        chunk = packed.base_chunks[0]
        assert chunk.has_single_outlier
        assert chunk.ol_idx == 5
        assert combine_outlier_weight(chunk.ol_msb, chunk.lanes[5]) == 100
        np.testing.assert_array_equal(packed.unpack(), levels)

    def test_multi_outlier_spills(self):
        levels = np.zeros((16, 1), dtype=np.int64)
        levels[2, 0] = 50
        levels[9, 0] = -80
        packed = pack_weights(levels)
        chunk = packed.base_chunks[0]
        assert chunk.has_multi_outlier
        assert len(packed.spill_chunks) == 1
        np.testing.assert_array_equal(packed.unpack(), levels)

    def test_out_channel_padding(self, rng):
        levels = rng.integers(-7, 8, size=(20, 3))  # 20 -> padded to 32
        packed = pack_weights(levels)
        assert packed.n_groups == 2
        np.testing.assert_array_equal(packed.unpack(), levels)

    def test_total_bits_accounting(self, rng):
        levels = rng.integers(-7, 8, size=(16, 10))
        packed = pack_weights(levels)
        assert packed.total_bits == 10 * WEIGHT_CHUNK_BITS  # 80 bits per chunk

    def test_levels_out_of_grid_raise(self):
        with pytest.raises(ValueError, match="8-bit outlier grid"):
            pack_weights(np.array([[200] + [0] * 15]).T.reshape(16, 1))

    def test_non_2d_raises(self):
        with pytest.raises(ValueError):
            pack_weights(np.zeros(16, dtype=np.int64))

    def test_multi_outlier_fraction_matches_binomial(self, rng):
        """Packed spill fraction agrees with the Fig. 17 analytic model."""
        from repro.olaccel import multi_outlier_probability

        ratio = 0.04
        levels = rng.integers(-7, 8, size=(160, 200))
        outliers = rng.random(levels.shape) < ratio
        levels[outliers] = rng.integers(8, 128, size=int(outliers.sum())) * rng.choice(
            [-1, 1], size=int(outliers.sum())
        )
        packed = pack_weights(levels)
        expected = multi_outlier_probability(ratio, LANES)
        assert packed.multi_outlier_fraction == pytest.approx(expected, rel=0.25)

    @given(
        hnp.arrays(np.int64, (32, 7), elements=st.integers(-127, 127)),
    )
    @settings(max_examples=40, deadline=None)
    def test_pack_unpack_roundtrip_property(self, levels):
        packed = pack_weights(levels)
        np.testing.assert_array_equal(packed.unpack(), levels)
