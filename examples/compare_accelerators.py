"""Reproduce the paper's headline comparison (Figs. 11-13).

Runs the paper-shape AlexNet, VGG-16 and ResNet-18 workloads through all
six accelerator configurations (Eyeriss/ZeNA/OLAccel at 16 and 8 bits)
and prints the normalized cycle and energy breakdowns plus the headline
OLAccel-vs-ZeNA reductions.

Run:  python examples/compare_accelerators.py [network ...]
"""

import sys

from repro.harness import breakdown_experiment

PAPER_HEADLINES = {
    # network -> (E16 red %, E8 red %, cyc16 red %, cyc8 red %)
    "alexnet": (43.5, 27.0, 31.5, 35.1),
    "vgg16": (56.7, 36.3, 45.3, 28.3),
    "resnet18": (62.2, 49.5, 25.3, 29.0),
}


def main(networks):
    for network in networks:
        result = breakdown_experiment(network)
        print(result.format())
        e16, e8, c16, c8 = PAPER_HEADLINES[network]
        print(
            f"paper reported: energy -{e16}% / -{e8}%, cycles -{c16}% / -{c8}%\n"
        )


if __name__ == "__main__":
    main(sys.argv[1:] or list(PAPER_HEADLINES))
