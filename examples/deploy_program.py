"""Deployment flow: compile a trained model into OLAccel layer programs.

The closest thing to "flashing the accelerator": quantize a trained model,
pack every layer's weights into the literal 80-bit chunk tables, inspect
the tiling over the cluster buffers, run hardware-path inference, and
export the per-layer simulation results to JSON/CSV.

Run:  python examples/deploy_program.py
"""

from pathlib import Path

from repro.harness import default_dataset, from_quantized_model, trained_mini
from repro.harness.serialize import run_stats_rows, save_csv, save_json
from repro.olaccel import OLAccelSimulator, compile_model
from repro.quant import QuantConfig, QuantizedModel, calibrate_activation_thresholds


def main():
    model = trained_mini("alexnet")
    data = default_dataset()
    calibration = calibrate_activation_thresholds(model, data.train_x[:100], ratio=0.03)

    # Compile: integer weights -> packed chunk tables -> 80-bit words.
    program = compile_model(model, calibration, QuantConfig(ratio=0.03))
    print(program.summary())

    # Hardware-path inference.
    logits = program.run(data.test_x[:200])
    accuracy = float((logits.argmax(axis=1) == data.test_y[:200]).mean())
    print(f"\nhardware-path top-1 on 200 held-out images: {accuracy:.3f}")

    # Cycle/energy simulation of the same deployed network, exported.
    qm = QuantizedModel(model, calibration, QuantConfig(ratio=0.03))
    stats = qm.measure_layer_stats(data.test_x[:50])
    workload = from_quantized_model(model, stats, data.test_x[:1])
    run = OLAccelSimulator().simulate_network(workload)

    out_dir = Path("results")
    csv_path = save_csv(run_stats_rows(run), out_dir / "deploy_layers.csv")
    json_path = save_json(
        {"accuracy_top1": accuracy, "total_cycles": run.total_cycles,
         "energy_pj": run.total_energy.as_dict()},
        out_dir / "deploy_summary.json",
    )
    print(f"wrote {csv_path} and {json_path}")


if __name__ == "__main__":
    main()
