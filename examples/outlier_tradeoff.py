"""Explore the outlier-ratio design space (Figs. 2 + 14 combined).

For each outlier ratio, measures (a) quantized accuracy on the trained
mini model and (b) OLAccel16 cycles/energy on the paper-shape AlexNet —
the exact trade-off the paper uses to justify ~3% outliers: a ~10% cycle
and ~20% energy premium buys back nearly all of the lost accuracy.

Run:  python examples/outlier_tradeoff.py
"""

from repro.harness import fig2_accuracy_vs_ratio, fig14_ratio_sweep, format_table


def main():
    ratios = (0.0, 0.01, 0.02, 0.035, 0.05)
    print("measuring accuracy (first run trains and caches the model) ...")
    accuracy = fig2_accuracy_vs_ratio(ratios=ratios)
    cost = fig14_ratio_sweep(ratios=ratios, with_accuracy=False)

    acc_by_ratio = {p.ratio: p for p in accuracy.points}
    cost_by_ratio = {p.ratio: p for p in cost.points}
    rows = []
    for ratio in ratios:
        acc = acc_by_ratio[ratio]
        c = cost_by_ratio[ratio]
        rows.append(
            (f"{ratio * 100:.1f}%", f"{acc.top1:.3f}", f"{acc.top5:.3f}",
             f"{c.cycles:.3f}", f"{c.energy:.3f}")
        )
    print(
        format_table(
            ["outlier ratio", "top-1", "top-5", "cycles (vs 0%)", "energy (vs 0%)"],
            rows,
            title=f"\noutlier-ratio trade-off (full precision top-5 = {accuracy.fp_top5:.3f})",
        )
    )

    # Pick the smallest ratio within 1.5% of full-precision top-5 — the
    # paper's operating-point logic.
    for ratio in ratios:
        if acc_by_ratio[ratio].top5 >= accuracy.fp_top5 - 0.015:
            print(f"\nsmallest ratio within 1.5% of full-precision top-5: {ratio * 100:.1f}%")
            break


if __name__ == "__main__":
    main()
