"""Bring your own network: quantize and simulate a custom CNN.

Shows the full downstream-user workflow on a hand-built architecture
(residual blocks + batch norm): train it, calibrate OAQ thresholds,
inspect per-layer quantization statistics, pack real weight chunks, run
the bit-exact OLAccel integer datapath on one convolution, and simulate
the whole network's cycles/energy.

Run:  python examples/custom_network.py
"""

import numpy as np

from repro.arch import pack_weights
from repro.harness import format_table, from_quantized_model
from repro.nn import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool,
    Linear,
    MaxPool2d,
    Model,
    ReLU,
    ResidualBlock,
    TrainConfig,
    make_dataset,
    train_model,
)
from repro.olaccel import OLAccelSimulator, olaccel_conv2d, reference_conv2d_int
from repro.quant import QuantConfig, QuantizedModel, calibrate_activation_thresholds, quantize_weights


def build_custom(num_classes: int) -> Model:
    rng = np.random.default_rng(42)
    return Model(
        [
            Conv2d(3, 24, kernel=3, pad=1, name="stem", rng=rng),
            ReLU(),
            MaxPool2d(2),
            ResidualBlock(
                body=[
                    Conv2d(24, 24, kernel=3, pad=1, bias=False, name="res.a", rng=rng),
                    BatchNorm2d(24, name="res.a.bn"),
                    ReLU(),
                    Conv2d(24, 24, kernel=3, pad=1, bias=False, name="res.b", rng=rng),
                    BatchNorm2d(24, name="res.b.bn"),
                ]
            ),
            Conv2d(24, 48, kernel=3, stride=2, pad=1, name="down", rng=rng),
            ReLU(),
            GlobalAvgPool(),
            Linear(48, num_classes, name="head", rng=rng),
        ],
        name="custom-resnet",
    )


def main():
    data = make_dataset(num_classes=8, train_per_class=60, test_per_class=25, seed=5)
    model = build_custom(data.num_classes)
    print("training custom network ...")
    train_model(model, data.train_x, data.train_y, TrainConfig(epochs=6, lr=0.01))

    calibration = calibrate_activation_thresholds(model, data.train_x[:80], ratio=0.03)
    qmodel = QuantizedModel(model, calibration, QuantConfig(ratio=0.03))
    print(f"full precision top-1: {model.accuracy(data.test_x, data.test_y):.3f}")
    print(f"OAQ 4-bit top-1:      {qmodel.accuracy(data.test_x, data.test_y):.3f}")

    # Per-layer quantization statistics drive the hardware simulation.
    stats = qmodel.measure_layer_stats(data.test_x[:30])
    rows = [
        (s.layer_name, f"{s.weight_outlier_ratio:.3f}", f"{s.act_density:.3f}", f"{s.act_outlier_ratio:.3f}")
        for s in stats
    ]
    print(format_table(["layer", "w outliers", "act density", "act outliers"], rows,
                       title="\nper-layer quantization statistics"))

    # Pack one layer's integer weights into real 80-bit chunks (Fig. 5).
    conv = model.compute_layers()[1]
    qt = quantize_weights(conv.weight.value, ratio=0.03)
    packed = pack_weights(qt.levels.reshape(qt.levels.shape[0], -1))
    print(
        f"\n{conv.name}: {packed.total_chunks} weight chunks "
        f"({packed.single_outlier_chunks} single-outlier, "
        f"{packed.multi_outlier_chunks} spilled), {packed.total_bits / 8 / 1024:.2f} KiB"
    )

    # Bit-exact integer datapath check on a real activation tensor.
    acts = np.clip(np.rint(np.abs(data.test_x[:1]) * 10), 0, 60).astype(np.int64)
    acts = np.repeat(acts, 8, axis=1)[:, : qt.levels.shape[1]]
    result = olaccel_conv2d(acts, qt.levels, pad=1)
    exact = np.array_equal(result.psum, reference_conv2d_int(acts, qt.levels, pad=1))
    print(f"bit-exact OLAccel datapath vs integer reference: {exact}")

    # Whole-network cycle/energy simulation.
    workload = from_quantized_model(model, stats, data.test_x[:1])
    run = OLAccelSimulator().simulate_network(workload)
    print(f"\nOLAccel16: {run.total_cycles:.3e} cycles, "
          f"{run.total_energy.total / 1e6:.2f} uJ "
          f"(dram {run.total_energy.dram / run.total_energy.total:.0%})")


if __name__ == "__main__":
    main()
