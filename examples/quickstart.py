"""Quickstart: outlier-aware quantization + OLAccel simulation in ~60 lines.

Trains a small CNN on a synthetic dataset, applies the paper's 4-bit
outlier-aware quantization (3% outliers at high precision), and compares
it against plain full-range linear 4-bit quantization — then runs the
quantized network through the OLAccel, Eyeriss and ZeNA simulators.

Run:  python examples/quickstart.py
"""

from repro.baselines import EyerissSimulator, ZenaSimulator
from repro.harness import format_table, from_quantized_model
from repro.nn import TrainConfig, make_dataset, mini_alexnet, train_model
from repro.olaccel import OLAccelSimulator
from repro.quant import QuantConfig, QuantizedModel, calibrate_activation_thresholds


def main():
    # 1. Train a small network (stand-in for a pretrained ImageNet model).
    data = make_dataset(num_classes=10, train_per_class=80, test_per_class=30, seed=1)
    model = mini_alexnet(num_classes=10)
    print("training mini-alexnet ...")
    train_model(model, data.train_x, data.train_y, TrainConfig(epochs=6, lr=0.01))
    fp_top1 = model.accuracy(data.test_x, data.test_y)

    # 2. Calibrate per-layer activation thresholds from ~100 sample inputs
    #    (paper Sec. II) and build the 4-bit quantized model.
    calibration = calibrate_activation_thresholds(model, data.train_x[:100], ratio=0.03)
    oaq = QuantizedModel(model, calibration, QuantConfig(ratio=0.03))

    # 3. Compare against conventional linear quantization (ratio = 0).
    cal0 = calibrate_activation_thresholds(model, data.train_x[:100], ratio=0.0)
    linear = QuantizedModel(model, cal0, QuantConfig(ratio=0.0))

    print(
        format_table(
            ["configuration", "top-1 accuracy"],
            [
                ("full precision", f"{fp_top1:.3f}"),
                ("linear 4-bit (no outliers)", f"{linear.accuracy(data.test_x, data.test_y):.3f}"),
                ("outlier-aware 4-bit (3%)", f"{oaq.accuracy(data.test_x, data.test_y):.3f}"),
            ],
            title="\naccuracy",
        )
    )

    # 4. Simulate the quantized network on the three accelerators.
    stats = oaq.measure_layer_stats(data.test_x[:30])
    workload = from_quantized_model(model, stats, data.test_x[:1])
    runs = {
        "eyeriss16": EyerissSimulator().simulate_network(workload),
        "zena16": ZenaSimulator().simulate_network(workload),
        "olaccel16": OLAccelSimulator().simulate_network(workload),
    }
    reference = runs["eyeriss16"]
    rows = [
        (name, f"{run.total_cycles / reference.total_cycles:.3f}",
         f"{run.total_energy.total / reference.total_energy.total:.3f}")
        for name, run in runs.items()
    ]
    print(format_table(["accelerator", "cycles", "energy"], rows,
                       title="\nsimulation (normalized to eyeriss16)"))


if __name__ == "__main__":
    main()
