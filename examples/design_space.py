"""Design-space exploration: what each OLAccel mechanism buys.

Uses the ablation harness to answer the questions the paper's Sec. III
design sections raise: How much does the 17th (outlier) MAC save? What
does quad zero-skipping buy? Does pipelining the outlier accumulation
matter? And was 16 the right PE-group width?

Run:  python examples/design_space.py [network]
"""

import sys

from repro.harness import format_table, run_all_ablations, sweep_group_size
from repro.olaccel import multi_outlier_probability, single_or_more_outlier_probability


def main(network: str = "alexnet"):
    print(f"== mechanism ablations on {network} ==")
    rows = []
    for result in run_all_ablations(network):
        rows.append((result.name, f"x{result.slowdown:.3f}", result.description))
    print(format_table(["mechanism removed", "cycle cost", "why"], rows))

    print(f"\n== PE-group width ({network}, worst-case 5% outliers) ==")
    sweep = sweep_group_size(network, ratio=0.05)
    normalized = sweep.normalized()
    rows = []
    for lanes in sorted(normalized):
        stall = single_or_more_outlier_probability(0.05, lanes)
        multi = multi_outlier_probability(0.05, lanes)
        rows.append((lanes, f"{normalized[lanes]:.3f}", f"{stall:.3f}", f"{multi:.3f}"))
    print(format_table(
        ["MACs/group", "cycles (vs 16)", "P(>=1 outlier)", "P(>=2 outliers)"], rows,
    ))
    print(
        "\nThe paper picks 16: wider groups stall on multi-outlier chunks"
        "\n(Fig. 17) and narrower groups under-use broadcast amortization and"
        "\nchannel parallelism in modern architectures (ResNeXt-style branches)."
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "alexnet")
