"""Differential fuzzing of the OLAccel integer datapath.

Generates random quantized tensors across the full parameter space
(shapes, strides, padding, densities, outlier ratios, extreme levels) and
checks three independent implementations against each other:

1. the golden integer reference (`reference_conv2d_int`),
2. the bit-exact split datapath (`olaccel_conv2d` — normal/outlier paths),
3. the chunk tables serialized through the literal 80-bit words
   (`encode_table`/`decode_table`) and re-used by the datapath.

`check_case` is importable — `tests/test_fuzz_smoke.py` runs a small
fixed-seed sample of the same property on every test run; this tool
remains the high-volume standalone entry point (also run in CI):

    python tools/fuzz_datapath.py [iterations] [seed]
"""

from __future__ import annotations

import sys
from typing import Optional

import numpy as np

from repro.arch import decode_table, encode_table, pack_weights
from repro.olaccel import olaccel_conv2d, reference_conv2d_int


def random_case(rng: np.random.Generator):
    c_in = int(rng.integers(1, 24))
    c_out = int(rng.integers(1, 40))
    size = int(rng.integers(3, 10))
    kernel = int(rng.choice([1, 3, 5]))
    stride = int(rng.choice([1, 2]))
    pad = int(rng.integers(0, kernel))
    if (size + 2 * pad - kernel) // stride + 1 <= 0:
        pad = kernel  # guarantee a valid output extent

    density = float(rng.uniform(0.0, 1.0))
    outlier = float(rng.uniform(0.0, 0.2))
    acts = rng.integers(0, 16, size=(int(rng.integers(1, 3)), c_in, size, size))
    acts[rng.random(acts.shape) >= density] = 0
    hot = rng.random(acts.shape) < outlier
    acts[hot] = rng.integers(16, 65536, size=int(hot.sum()))

    weights = rng.integers(-7, 8, size=(c_out, c_in, kernel, kernel))
    hot_w = rng.random(weights.shape) < outlier
    weights[hot_w] = rng.integers(8, 128, size=int(hot_w.sum())) * rng.choice([-1, 1], size=int(hot_w.sum()))
    return acts, weights, stride, pad


def check_case(acts, weights, stride: int, pad: int) -> Optional[str]:
    """Run one case through all three implementations; None when they agree."""
    reference = reference_conv2d_int(acts, weights, stride, pad)

    result = olaccel_conv2d(acts, weights, stride, pad, act_normal_max=15)
    if not np.array_equal(result.psum, reference):
        return f"datapath mismatch: shape={acts.shape} w={weights.shape} s={stride} p={pad}"

    packed = pack_weights(weights.reshape(weights.shape[0], -1))
    if len(packed.spill_chunks) <= 254:
        base_words, spill_words = encode_table(packed.base_chunks, packed.spill_chunks)
        packed.base_chunks, packed.spill_chunks = decode_table(base_words, spill_words)
    via_words = olaccel_conv2d(acts, weights, stride, pad, packed=packed)
    if not np.array_equal(via_words.psum, reference):
        return f"bit-codec mismatch: shape={acts.shape} w={weights.shape}"
    return None


def run(iterations: int, seed: int) -> int:
    rng = np.random.default_rng(seed)
    failures = 0
    for i in range(iterations):
        acts, weights, stride, pad = random_case(rng)
        error = check_case(acts, weights, stride, pad)
        if error:
            failures += 1
            print(f"[{i}] {error}")

    print(f"{iterations} cases, {failures} failures")
    return 1 if failures else 0


if __name__ == "__main__":
    iterations = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 0
    sys.exit(run(iterations, seed))
