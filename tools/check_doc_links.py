#!/usr/bin/env python3
"""Verify that relative markdown links in the repo's docs resolve.

Scans every tracked ``*.md`` file for ``[text](target)`` links, skips
external (``http(s)://``, ``mailto:``) and pure-anchor targets, and
checks that each remaining target exists relative to the linking file.
Exits non-zero listing every broken link, so CI catches docs rotting
when files move.

Usage::

    python tools/check_doc_links.py [root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: inline markdown links; images share the syntax bar a leading '!'
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")
_SKIP_DIRS = {".git", ".hypothesis", "__pycache__", ".pytest_cache", "results", "node_modules"}
#: files quoting *other* repositories verbatim — their links point there
_SKIP_FILES = {"SNIPPETS.md", "PAPERS.md"}


def iter_markdown(root: Path):
    for path in sorted(root.rglob("*.md")):
        if path.name in _SKIP_FILES:
            continue
        if not any(part in _SKIP_DIRS for part in path.parts):
            yield path


def check_file(path: Path, root: Path):
    """Yield (target, reason) for each broken link in ``path``."""
    text = path.read_text(encoding="utf-8")
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(_SKIP_PREFIXES):
            continue
        clean = target.split("#", 1)[0].split("?", 1)[0]
        if not clean:
            continue
        resolved = (root / clean.lstrip("/")) if clean.startswith("/") else (path.parent / clean)
        if not resolved.exists():
            yield target, f"{resolved.resolve()} does not exist"


def main(argv=None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    root = Path(args[0]) if args else Path(__file__).resolve().parent.parent
    broken = []
    checked = 0
    for path in iter_markdown(root):
        checked += 1
        for target, reason in check_file(path, root):
            broken.append(f"{path.relative_to(root)}: ({target}) -> {reason}")
    if broken:
        print(f"{len(broken)} broken link(s) across {checked} markdown file(s):")
        for line in broken:
            print(f"  {line}")
        return 1
    print(f"ok: {checked} markdown file(s), no broken relative links")
    return 0


if __name__ == "__main__":
    sys.exit(main())
