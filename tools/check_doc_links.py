#!/usr/bin/env python3
"""Verify the repo's markdown docs against the things they point at.

Three checks, all exiting non-zero with a per-problem listing so CI
catches docs rotting as the code moves:

1. **Relative links** — every ``[text](target)`` in a tracked ``*.md``
   must resolve to an existing file (external ``http(s)://`` /
   ``mailto:`` targets are skipped).
2. **Anchor fragments** — ``#fragment`` parts, both same-file
   (``[x](#foo)``) and cross-file (``[x](OTHER.md#foo)``), must match a
   heading in the target document under GitHub's slugification rules
   (lowercase, punctuation stripped, spaces to hyphens, duplicate slugs
   numbered ``-1``, ``-2``, …).
3. **CLI verbs, bidirectionally** — every ``repro <verb>`` the docs
   mention (in inline code spans or fenced blocks) must be a subcommand
   ``src/repro/cli.py`` actually registers, and every registered verb
   must be mentioned by at least one doc — an undocumented verb is as
   much a bug as a documented ghost.

Usage::

    python tools/check_doc_links.py [root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: inline markdown links; images share the syntax bar a leading '!'
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_SKIP_PREFIXES = ("http://", "https://", "mailto:")
_SKIP_DIRS = {".git", ".hypothesis", "__pycache__", ".pytest_cache", "results", "node_modules"}
#: files quoting *other* repositories verbatim — their links point there
_SKIP_FILES = {"SNIPPETS.md", "PAPERS.md"}

#: ATX headings; markdown inside fenced code blocks is excluded upstream
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_FENCE = re.compile(r"^\s*(```|~~~)")

#: ``add_parser("verb")`` registrations in the CLI
_ADD_PARSER = re.compile(r"add_parser\(\s*['\"]([a-z][a-z0-9-]*)['\"]")
#: ``repro <verb>`` mentions inside docs (code spans and fenced blocks)
_VERB_MENTION = re.compile(r"\brepro\s+([a-z][a-z0-9-]*)\b")
#: planning docs may name verbs that do not exist *yet*
_VERB_SKIP_FILES = {"ROADMAP.md", "ISSUE.md", "CHANGES.md", "DESIGN.md"}


def iter_markdown(root: Path):
    for path in sorted(root.rglob("*.md")):
        if path.name in _SKIP_FILES:
            continue
        if not any(part in _SKIP_DIRS for part in path.parts):
            yield path


def github_slug(heading: str, seen: dict) -> str:
    """GitHub's anchor slug for a heading text, tracking duplicates.

    Inline code/emphasis markers are stripped, then: lowercase, drop
    everything but word characters, spaces and hyphens, and turn spaces
    into hyphens. ``seen`` maps base slugs to their occurrence count so
    repeated headings get ``-1``, ``-2``, … suffixes like GitHub does.
    """
    text = re.sub(r"[`*_]", "", heading)
    text = re.sub(r"[^\w\- ]", "", text.lower())
    slug = text.replace(" ", "-")
    n = seen.get(slug, 0)
    seen[slug] = n + 1
    return slug if n == 0 else f"{slug}-{n}"


def heading_slugs(path: Path) -> set:
    """Every valid anchor in a markdown file (fenced blocks ignored)."""
    slugs: set = set()
    seen: dict = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if match:
            slugs.add(github_slug(match.group(2), seen))
    return slugs


def check_file(path: Path, root: Path, slug_cache: dict = None):
    """Yield (target, reason) for each broken link or anchor in ``path``."""
    slug_cache = slug_cache if slug_cache is not None else {}
    text = path.read_text(encoding="utf-8")
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(_SKIP_PREFIXES):
            continue
        clean, _, fragment = target.partition("#")
        clean = clean.split("?", 1)[0]
        if clean:
            resolved = (root / clean.lstrip("/")) if clean.startswith("/") else (path.parent / clean)
            if not resolved.exists():
                yield target, f"{resolved.resolve()} does not exist"
                continue
        else:
            resolved = path  # pure-anchor link into this same document
        if fragment and resolved.suffix == ".md":
            key = resolved.resolve()
            if key not in slug_cache:
                slug_cache[key] = heading_slugs(resolved)
            if fragment.lower() not in slug_cache[key]:
                yield target, f"no heading in {resolved.name} slugifies to #{fragment}"


def cli_verbs(root: Path) -> set:
    """The subcommands ``src/repro/cli.py`` registers."""
    cli = root / "src" / "repro" / "cli.py"
    if not cli.exists():
        return set()
    return set(_ADD_PARSER.findall(cli.read_text(encoding="utf-8")))


def doc_verb_mentions(root: Path):
    """Map verb -> first mentioning doc, from code spans and fenced blocks."""
    mentions: dict = {}
    for path in iter_markdown(root):
        if path.name in _VERB_SKIP_FILES:
            continue
        text = path.read_text(encoding="utf-8")
        snippets = []
        in_fence = False
        for line in text.splitlines():
            if _FENCE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                snippets.append(line)
        snippets.extend(re.findall(r"`([^`]*)`", text))
        for snippet in snippets:
            for verb in _VERB_MENTION.findall(snippet):
                mentions.setdefault(verb, path)
    return mentions


def check_verbs(root: Path):
    """Yield one message per verb/doc mismatch, both directions."""
    registered = cli_verbs(root)
    if not registered:
        return
    mentions = doc_verb_mentions(root)
    for verb in sorted(set(mentions) - registered):
        yield (
            f"{mentions[verb].relative_to(root)}: mentions `repro {verb}` "
            f"but cli.py registers no such subcommand"
        )
    for verb in sorted(registered - set(mentions)):
        yield (
            f"cli.py registers `repro {verb}` but no markdown doc mentions it "
            f"(add it to README.md or docs/)"
        )


def main(argv=None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    root = Path(args[0]) if args else Path(__file__).resolve().parent.parent
    broken = []
    checked = 0
    slug_cache: dict = {}
    for path in iter_markdown(root):
        checked += 1
        for target, reason in check_file(path, root, slug_cache):
            broken.append(f"{path.relative_to(root)}: ({target}) -> {reason}")
    broken.extend(check_verbs(root))
    if broken:
        print(f"{len(broken)} problem(s) across {checked} markdown file(s):")
        for line in broken:
            print(f"  {line}")
        return 1
    print(
        f"ok: {checked} markdown file(s) — links, anchors and "
        f"{len(cli_verbs(root))} CLI verb(s) all consistent"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
