#!/usr/bin/env python
"""Standalone benchmark entry point (same engine as ``repro bench``).

Times the vectorized hot paths against their ``slow_reference`` twins and
writes the versioned ``BENCH_<date>.json`` envelope. CI runs the smoke
variant and uploads the JSON as an artifact; run the full set locally to
record a baseline:

    PYTHONPATH=src python tools/bench_runner.py [--smoke] [--seed N] [--json PATH]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.harness.bench import default_bench_path, run_benchmarks  # noqa: E402
from repro.harness.serialize import experiment_envelope, save_json  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="small inputs for CI smoke runs")
    parser.add_argument("--seed", type=int, default=None, metavar="N")
    parser.add_argument("--json", metavar="PATH", help=f"output path (default {default_bench_path()})")
    args = parser.parse_args(argv)

    result = run_benchmarks(smoke=args.smoke, seed=args.seed)
    print(result.format())
    envelope = experiment_envelope(
        "bench", result.to_dict(), "wall-clock hot-path benchmarks (vectorized vs slow_reference)"
    )
    print(f"wrote {save_json(envelope, args.json or default_bench_path())}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
