"""Collect every paper-vs-measured number for EXPERIMENTS.md.

Runs the full experiment suite (training mini models on first use) and
prints a compact summary of the quantities EXPERIMENTS.md records.

Run:  python tools/collect_results.py
"""

from __future__ import annotations

from repro.harness import (
    breakdown_experiment,
    fig1_weight_distributions,
    fig2_accuracy_vs_ratio,
    fig3_accuracy_networks,
    fig14_ratio_sweep,
    fig15_scalability,
    fig16_outlier_histogram,
    fig17_multi_outlier,
    fig18_utilization,
    fig19_chunk_cycles,
    run_all_ablations,
    table1_configurations,
)


def main() -> None:
    print("== Table I ==")
    print(table1_configurations().format())

    print("\n== Fig. 1 ==")
    fig1 = fig1_weight_distributions()
    print(f"linear SQNR {fig1.linear_sqnr_db:.2f} dB vs OAQ {fig1.oaq_sqnr_db:.2f} dB; "
          f"achieved outlier ratio {fig1.outlier_ratio:.4f}")

    print("\n== Fig. 2 ==")
    print(fig2_accuracy_vs_ratio().format())

    print("\n== Fig. 3 ==")
    print(fig3_accuracy_networks().format())

    for name, fig in (("alexnet", "Fig. 11"), ("vgg16", "Fig. 12"), ("resnet18", "Fig. 13"),
                      ("resnet101", "ext"), ("densenet121", "ext")):
        result = breakdown_experiment(name)
        cyc = result.normalized_cycles()
        print(f"\n== {fig} ({name}) ==")
        print(f"E red 16: {result.reduction('olaccel16', 'zena16') * 100:.1f}%  "
              f"E red 8: {result.reduction('olaccel8', 'zena8') * 100:.1f}%  "
              f"cyc red 16: {result.reduction('olaccel16', 'zena16', 'cycles') * 100:.1f}%  "
              f"cyc red 8: {result.reduction('olaccel8', 'zena8', 'cycles') * 100:.1f}%  "
              f"cyc red vs eyeriss16: {(1 - cyc['olaccel16']) * 100:.1f}% / "
              f"vs eyeriss8: {(1 - cyc['olaccel8'] / cyc['eyeriss8']) * 100:.1f}%")
        if name == "resnet18":
            lc = result.layer_cycles("olaccel16")
            print(f"conv1 share of OLAccel16 cycles: {lc['conv1'] / sum(lc.values()) * 100:.1f}%")

    print("\n== Fig. 14 ==")
    print(fig14_ratio_sweep().format())

    print("\n== Fig. 15 ==")
    print(fig15_scalability().format())

    print("\n== Fig. 16 ==")
    fig16 = fig16_outlier_histogram()
    print(f"per-image mean {fig16.mean_ratio:.4f} (target {fig16.target_ratio})")

    print("\n== Fig. 17 ==")
    fig17 = fig17_multi_outlier()
    for lanes, series in sorted(fig17.series.items()):
        print(f"lanes={lanes}: P(>=2) at 5% = {series[-1]:.3f}")

    print("\n== Fig. 18 ==")
    print(fig18_utilization().format())

    print("\n== Fig. 19 ==")
    print(fig19_chunk_cycles().format())

    print("\n== Ablations ==")
    for result in run_all_ablations("alexnet"):
        print(result.format())


if __name__ == "__main__":
    main()
