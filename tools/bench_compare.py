#!/usr/bin/env python
"""Diff two ``BENCH_<date>.json`` envelopes and gate on regressions.

Usage::

    PYTHONPATH=src python tools/bench_compare.py BASELINE.json CURRENT.json
    PYTHONPATH=src python tools/bench_compare.py base.json cur.json \
        --metric speedup --threshold 0.5 --cases pack_weights event_sim_cluster

Compares every benchmark case present in *both* envelopes (or the
``--cases`` subset) and exits 1 if any regresses past ``--threshold``
(default 0.15 = 15%):

- ``--metric best_s`` (default) — wall-clock of the fast path; a
  regression is ``current > baseline * (1 + threshold)``. Only
  meaningful when both envelopes came from the same machine.
- ``--metric speedup`` — the fast-vs-slow_reference ratio; a regression
  is ``current < baseline * (1 - threshold)``. Ratios mostly cancel the
  machine out, so this is what CI gates against the committed smoke
  baseline (benchmarks/BENCH_BASELINE_SMOKE.json).

Timing-only cases (no ``slow_reference`` twin, so no ``speedup`` field —
``quantize_weights``, ``simulate_layer``, ``simulate_network``) are not
skipped under ``--metric speedup``: they fall back to a ``best_s``
wall-clock gate at ``--timing-threshold`` (default: the main threshold).
Cross-machine wall clock is noisy, so CI passes a deliberately loose
``--timing-threshold`` that still catches order-of-magnitude blowups
(e.g. a vectorized path silently degrading to its scalar twin). A case
that was paired in the baseline but lost its ``speedup`` in the current
envelope is itself a regression — the pairing vanished. Envelope
integrity digests are verified on load; a corrupt file exits 2.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, Optional

from repro.errors import ArtifactIntegrityError
from repro.harness.serialize import load_json

METRICS = ("best_s", "speedup")


def load_cases(path: str) -> Dict[str, dict]:
    envelope = load_json(path, verify=True)
    result = envelope.get("result", envelope)
    cases = result.get("cases")
    if not isinstance(cases, list):
        raise SystemExit(f"{path}: not a bench envelope (no result.cases list)")
    return {case["name"]: case for case in cases}


def compare(
    baseline: Dict[str, dict],
    current: Dict[str, dict],
    metric: str,
    threshold: float,
    only: Optional[list] = None,
    timing_threshold: Optional[float] = None,
) -> int:
    names = [n for n in baseline if n in current]
    if only:
        missing = [n for n in only if n not in names]
        if missing:
            print(f"requested case(s) absent from both envelopes: {', '.join(missing)}",
                  file=sys.stderr)
            return 2
        names = [n for n in names if n in only]
    if not names:
        print("no cases in common between the two envelopes", file=sys.stderr)
        return 2
    timing_threshold = timing_threshold if timing_threshold is not None else threshold

    regressions = []
    width = max(len(n) for n in names)
    print(f"{'case'.ljust(width)}  {'baseline':>10}  {'current':>10}  {'change':>8}  verdict")
    for name in names:
        base_v = baseline[name].get(metric)
        cur_v = current[name].get(metric)
        eff_metric, eff_threshold = metric, threshold
        note = ""
        if metric == "speedup" and (base_v is None or cur_v is None):
            if base_v is not None and cur_v is None:
                # The baseline had a fast-vs-slow pairing this envelope
                # lost — that IS the regression, whatever the wall clock.
                print(f"{name.ljust(width)}  {base_v:>9.1f}x  {'-':>10}  {'-':>8}  "
                      "REGRESSED (speedup pairing lost)")
                regressions.append(name)
                continue
            if base_v is None and cur_v is not None:
                print(f"{name.ljust(width)}  {'-':>10}  {cur_v:>9.1f}x  {'-':>8}  "
                      "ok (newly paired; no baseline ratio)")
                continue
            # Timing-only on both sides: gate wall clock instead.
            base_v = baseline[name].get("best_s")
            cur_v = current[name].get("best_s")
            eff_metric, eff_threshold = "best_s", timing_threshold
            note = " [best_s fallback]"
        if base_v is None or cur_v is None:
            print(f"{name.ljust(width)}  {'-':>10}  {'-':>10}  {'-':>8}  "
                  f"skipped (no {eff_metric})")
            continue
        change = (cur_v - base_v) / base_v if base_v else 0.0
        if eff_metric == "best_s":
            regressed = cur_v > base_v * (1.0 + eff_threshold)
            shown = (f"{base_v * 1e3:.2f}ms", f"{cur_v * 1e3:.2f}ms")
        else:  # speedup: higher is better
            regressed = cur_v < base_v * (1.0 - eff_threshold)
            shown = (f"{base_v:.1f}x", f"{cur_v:.1f}x")
        verdict = ("REGRESSED" if regressed else "ok") + note
        print(f"{name.ljust(width)}  {shown[0]:>10}  {shown[1]:>10}  {change:+8.1%}  {verdict}")
        if regressed:
            regressions.append(name)

    if regressions:
        print(
            f"\n{len(regressions)} case(s) regressed past {threshold:.0%} "
            f"on {metric}: {', '.join(regressions)}",
            file=sys.stderr,
        )
        return 1
    print(f"\nno {metric} regression past {threshold:.0%} across {len(names)} case(s)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline BENCH_<date>.json envelope")
    parser.add_argument("current", help="current BENCH_<date>.json envelope")
    parser.add_argument(
        "--threshold", type=float, default=0.15, metavar="F",
        help="allowed fractional regression before failing (default 0.15)",
    )
    parser.add_argument(
        "--metric", choices=METRICS, default="best_s",
        help="best_s: fast-path wall-clock (same-machine diffs); "
             "speedup: fast/slow ratio (cross-machine CI gate)",
    )
    parser.add_argument(
        "--cases", nargs="+", default=None, metavar="NAME",
        help="restrict the comparison to these case names",
    )
    parser.add_argument(
        "--timing-threshold", type=float, default=None, metavar="F",
        help="fractional best_s regression allowed for timing-only cases "
             "under --metric speedup (default: --threshold); CI sets this "
             "loose since cross-machine wall clock is noisy",
    )
    args = parser.parse_args(argv)
    try:
        baseline = load_cases(args.baseline)
        current = load_cases(args.current)
    except ArtifactIntegrityError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return compare(
        baseline, current, args.metric, args.threshold, args.cases,
        timing_threshold=args.timing_threshold,
    )


if __name__ == "__main__":
    raise SystemExit(main())
